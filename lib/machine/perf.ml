type t = {
  mutable instructions : int;
  mutable cycles : float;
  mutable bus_cycles : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable dcache_hits : int;
  mutable dcache_misses : int;
  mutable tlb_misses : int;
  mutable address_space_switches : int;
  mutable tlb_shootdowns : int;
  mutable interrupts : int;
  (* SMP counters: kept outside [snapshot] (like [tlb_shootdowns]) so
     single-CPU windowed measurements stay byte-identical to pre-SMP. *)
  mutable coherence_misses : int;
  mutable bus_stall_cycles : float;
  mutable ipis_sent : int;
  mutable ipis_received : int;
}

type snapshot = {
  instructions : int;
  cycles : int;
  bus_cycles : int;
  icache_hits : int;
  icache_misses : int;
  dcache_hits : int;
  dcache_misses : int;
  tlb_misses : int;
  address_space_switches : int;
  interrupts : int;
}

let create () : t =
  {
    instructions = 0;
    cycles = 0.;
    bus_cycles = 0;
    icache_hits = 0;
    icache_misses = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    tlb_misses = 0;
    address_space_switches = 0;
    tlb_shootdowns = 0;
    interrupts = 0;
    coherence_misses = 0;
    bus_stall_cycles = 0.;
    ipis_sent = 0;
    ipis_received = 0;
  }

let zero =
  {
    instructions = 0;
    cycles = 0;
    bus_cycles = 0;
    icache_hits = 0;
    icache_misses = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    tlb_misses = 0;
    address_space_switches = 0;
    interrupts = 0;
  }

let add_instructions (t : t) n = t.instructions <- t.instructions + n
let add_cycles (t : t) c = t.cycles <- t.cycles +. c
let add_bus_cycles (t : t) n = t.bus_cycles <- t.bus_cycles + n

let icache_access (t : t) ~hit =
  if hit then t.icache_hits <- t.icache_hits + 1
  else t.icache_misses <- t.icache_misses + 1

let dcache_access (t : t) ~hit =
  if hit then t.dcache_hits <- t.dcache_hits + 1
  else t.dcache_misses <- t.dcache_misses + 1

let tlb_miss (t : t) = t.tlb_misses <- t.tlb_misses + 1

let address_space_switch (t : t) =
  t.address_space_switches <- t.address_space_switches + 1

let tlb_shootdown (t : t) = t.tlb_shootdowns <- t.tlb_shootdowns + 1
let tlb_shootdowns (t : t) = t.tlb_shootdowns

let coherence_miss (t : t) = t.coherence_misses <- t.coherence_misses + 1
let coherence_misses (t : t) = t.coherence_misses

let bus_stall (t : t) cycles = t.bus_stall_cycles <- t.bus_stall_cycles +. cycles
let bus_stall_cycles (t : t) = int_of_float (Float.round t.bus_stall_cycles)

let ipi_sent (t : t) = t.ipis_sent <- t.ipis_sent + 1
let ipis_sent (t : t) = t.ipis_sent
let ipi_received (t : t) = t.ipis_received <- t.ipis_received + 1
let ipis_received (t : t) = t.ipis_received

let interrupt (t : t) = t.interrupts <- t.interrupts + 1

(* Cycle totals accumulate in float (sub-cycle store penalties); reads
   round to nearest so truncation can't bias repeated snapshot diffs. *)
let snapshot (t : t) : snapshot =
  {
    instructions = t.instructions;
    cycles = int_of_float (Float.round t.cycles);
    bus_cycles = t.bus_cycles;
    icache_hits = t.icache_hits;
    icache_misses = t.icache_misses;
    dcache_hits = t.dcache_hits;
    dcache_misses = t.dcache_misses;
    tlb_misses = t.tlb_misses;
    address_space_switches = t.address_space_switches;
    interrupts = t.interrupts;
  }

let diff a b =
  {
    instructions = a.instructions - b.instructions;
    cycles = a.cycles - b.cycles;
    bus_cycles = a.bus_cycles - b.bus_cycles;
    icache_hits = a.icache_hits - b.icache_hits;
    icache_misses = a.icache_misses - b.icache_misses;
    dcache_hits = a.dcache_hits - b.dcache_hits;
    dcache_misses = a.dcache_misses - b.dcache_misses;
    tlb_misses = a.tlb_misses - b.tlb_misses;
    address_space_switches = a.address_space_switches - b.address_space_switches;
    interrupts = a.interrupts - b.interrupts;
  }

let cpi s =
  if s.instructions = 0 then nan
  else float_of_int s.cycles /. float_of_int s.instructions

let cycles (t : t) = int_of_float (Float.round t.cycles)
let cycles_exact (t : t) = t.cycles

let pp ppf s =
  Format.fprintf ppf
    "@[<v>instructions %d@ cycles %d@ bus cycles %d@ CPI %.2f@ I$ %d/%d \
     hit/miss@ D$ %d/%d hit/miss@ TLB misses %d@ AS switches %d@ \
     interrupts %d@]"
    s.instructions s.cycles s.bus_cycles (cpi s) s.icache_hits
    s.icache_misses s.dcache_hits s.dcache_misses s.tlb_misses
    s.address_space_switches s.interrupts
