module Config = Config
module Perf = Perf
module Cache = Cache
module Tlb = Tlb
module Layout = Layout
module Footprint = Footprint
module Bus = Bus
module Cpu = Cpu
module Event_queue = Event_queue
module Irq = Irq
module Disk = Disk
module Framebuffer = Framebuffer

type t = {
  config : Config.t;
  mutable cpu : Cpu.t;  (* the CPU whose context is currently executing *)
  cpus : Cpu.t array;
  bus : Bus.t;
  mutable active : int;  (* index of [cpu] within [cpus] *)
  layout : Layout.t;
  events : Event_queue.t;
  irq : Irq.t;
  disk : Disk.t;
  framebuffer : Framebuffer.t;
}

let disk_irq_line = 14
let timer_irq_line = 0

let create ?(disk_geometry = Disk.default_geometry) config =
  let bus = Bus.create ~ncpus:config.Config.ncpus in
  let cpus =
    Array.init config.Config.ncpus (fun id -> Cpu.create ~id ~bus config)
  in
  let cpu = cpus.(0) in
  let layout = Layout.create config in
  let events = Event_queue.create () in
  (* devices — interrupt controller, disk, frame buffer — live on the
     boot CPU: device completions are delivered there and cross to other
     CPUs only through scheduler messages *)
  let irq = Irq.create cpu ~lines:16 in
  let disk =
    Disk.create cpu events irq ~line:disk_irq_line ~name:"hd0" disk_geometry
  in
  let framebuffer = Framebuffer.create cpu layout ~width:640 ~height:480 in
  { config; cpu; cpus; bus; active = 0; layout; events; irq; disk; framebuffer }

let ncpus t = Array.length t.cpus
let nth_cpu t i = t.cpus.(i)

let set_active t i =
  if i <> t.active then begin
    t.active <- i;
    t.cpu <- t.cpus.(i)
  end

let active t = t.active

let now t = Cpu.now t.cpu
let execute t fp = Cpu.execute t.cpu fp

(* Wall-clock of the whole machine: the furthest-ahead CPU.  Equal to
   [now] on a uniprocessor. *)
let global_now t =
  let m = ref 0. in
  Array.iter
    (fun c ->
      let x = Cpu.now_exact c in
      if x > !m then m := x)
    t.cpus;
  int_of_float (Float.round !m)

(* Raise an inter-processor interrupt from the active CPU to [target]:
   a fixed send cost on the sender, an interrupt taken on the target.
   The scheduler layer owns delivery semantics (message-queue drain);
   this is only the hardware cost and counters. *)
let ipi t ~target =
  let sender = t.cpu in
  Perf.ipi_sent (Cpu.perf sender);
  Cpu.execute_item sender (Footprint.Stall t.config.Config.ipi_cycles);
  let dst = t.cpus.(target) in
  Perf.ipi_received (Cpu.perf dst);
  Perf.interrupt (Cpu.perf dst)

(* Device events fire on the boot CPU's timeline: idle time is skipped
   there, and any cross-CPU wakeups the handlers make travel as
   scheduler messages stamped with the boot CPU's clock. *)
let advance_to_next_event t =
  match Event_queue.next_time t.events with
  | None -> false
  | Some time ->
      set_active t 0;
      Cpu.advance_to t.cpu time;
      let (_ : int) = Event_queue.run_due t.events ~now:(Cpu.now t.cpu) in
      true

let run_events t =
  let (_ : int) = Event_queue.run_due t.events ~now:(Cpu.now t.cpu) in
  ()

let pp_inventory ppf t =
  Format.fprintf ppf "@[<v>machine: %a@ %a@]" Config.pp t.config
    (Format.pp_print_list Layout.pp_region)
    (Layout.regions t.layout)
