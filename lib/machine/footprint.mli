(** Execution footprints.

    A footprint is the cost-model representation of running a stretch of
    simulated software: which code bytes were fetched (and from where),
    which data addresses were loaded and stored, and any architectural
    events (address-space switch, uncached device access, raw stalls).
    The {!Cpu} replays a footprint against the cache/TLB models and
    charges the performance counters.

    Footprints compose by list concatenation, so a kernel path is the
    concatenation of its stages — entry stub, service routine, copy loop,
    scheduler, exit — each contributed by the module that owns that code
    region. *)

type item =
  | Fetch of { region : Layout.region; offset : int; bytes : int }
      (** Straight-line execution of [bytes] of instructions starting at
          [region.base + offset]. *)
  | Load of { addr : int; bytes : int }
  | Store of { addr : int; bytes : int }
  | Uncached_read of { addr : int; bytes : int }
      (** Device read: always a bus transaction, bypasses the D-cache. *)
  | Uncached_write of { addr : int; bytes : int }
  | Switch_address_space
      (** CR3 write: fixed cost plus a TLB flush. *)
  | Stall of int  (** Raw stall cycles (pipeline drain, I/O wait). *)

type t = item list

val fetch : Layout.region -> ?offset:int -> bytes:int -> unit -> item
val load : addr:int -> bytes:int -> item
val store : addr:int -> bytes:int -> item

val run :
  Layout.region ->
  ?offset:int ->
  code_bytes:int ->
  ?loads:(int * int) list ->
  ?stores:(int * int) list ->
  unit ->
  t
(** [run region ~code_bytes ~loads ~stores ()] is the common shape of a
    routine: one fetch run plus its data traffic ([(addr, bytes)] pairs). *)

val copy : src:int -> dst:int -> bytes:int -> t
(** Data movement of [bytes] from [src] to [dst] as load/store pairs in
    cache-line-sized chunks (the physical-copy primitive of the IBM RPC
    path). *)

val touch_region : Layout.region -> t
(** Load one word from every page of a region (fault-in / warm-up). *)

val code_bytes : t -> int
(** Total fetched bytes in the footprint. *)

(** {1 Machine-state accounting}

    The bytes of hardware bookkeeping state the machine itself carries.
    Caches and TLBs replicate per CPU, so density measurements over an
    SMP machine must scale them by [Config.ncpus]; the coherence
    directory is shared and counted once (zero on a uniprocessor). *)

type machine_state = {
  ms_ncpus : int;
  ms_cache_bytes_per_cpu : int;  (** I$ + D$ data plus tag/state arrays *)
  ms_tlb_bytes_per_cpu : int;
  ms_bus_directory_bytes : int;  (** write-invalidate directory, shared *)
  ms_total_bytes : int;
}

val machine_state : Config.t -> machine_state

val pp : Format.formatter -> t -> unit
