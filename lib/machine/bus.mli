(** The shared memory bus of an SMP machine.

    All CPUs of one {!Machine.t} share one bus.  It models transaction
    occupancy (bounded bus cycles per window of the cycle clock; demand
    past a window's capacity comes back as stall) and write-invalidate
    coherence
    (a directory of last writers per cache line; touching a line another
    CPU wrote costs a cache-to-cache transfer).

    On a 1-CPU machine every entry point is inert — no stalls, no
    directory, no counters — so uniprocessor measurements are identical
    to the pre-SMP cost model. *)

type t

val create : ncpus:int -> t
(** @raise Invalid_argument when [ncpus < 1]. *)

val ncpus : t -> int

val acquire : t -> now:float -> bus_cycles:int -> float
(** [acquire t ~now ~bus_cycles] books a transaction of [bus_cycles]
    issued at CPU-clock [now] and returns the stall cycles the issuing
    CPU must absorb: zero while the surrounding capacity window has
    bandwidth left, the unmet overflow once the window oversubscribes
    (and always 0 on a 1-CPU machine). *)

val note_access : t -> cpu:int -> line:int -> write:bool -> bool
(** Record a data access to [line] (a line-aligned address) by [cpu];
    [true] when it is a coherence miss — the line's last writer was a
    different CPU.  Writes take ownership; reads leave the line shared.
    Always [false] on a 1-CPU machine. *)

val transactions : t -> int
(** Bus transactions arbitrated (multi-CPU machines only). *)

val contended : t -> int
(** Transactions that found the bus busy and stalled. *)

val reset : t -> unit
(** Forget reservations and ownership (cold-start measurement aid). *)
