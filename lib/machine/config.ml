type cache_geometry = { size : int; line : int; assoc : int }

type t = {
  name : string;
  cpu_mhz : int;
  bytes_per_instruction : int;
  base_cpi : float;
  icache : cache_geometry;
  dcache : cache_geometry;
  line_fill_cycles : int;
  line_fill_bus_cycles : int;
  write_bus_cycles : int;
  tlb_entries : int;
  tlb_miss_cycles : int;
  tlb_miss_bus_cycles : int;
  address_space_switch_cycles : int;
  page_size : int;
  memory_bytes : int;
  ncpus : int;
  coherence_miss_cycles : int;
  ipi_cycles : int;
}

let mib n = n * 1024 * 1024
let kib n = n * 1024

let pentium_133 =
  {
    name = "pentium-133";
    cpu_mhz = 133;
    bytes_per_instruction = 4;
    base_cpi = 2.0;
    icache = { size = kib 8; line = 32; assoc = 2 };
    dcache = { size = kib 8; line = 32; assoc = 2 };
    line_fill_cycles = 26;
    line_fill_bus_cycles = 6;
    write_bus_cycles = 4;
    tlb_entries = 64;
    tlb_miss_cycles = 30;
    tlb_miss_bus_cycles = 4;
    address_space_switch_cycles = 40;
    page_size = 4096;
    memory_bytes = mib 16;
    ncpus = 1;
    coherence_miss_cycles = 40;
    ipi_cycles = 60;
  }

let ppc604_133 =
  {
    name = "ppc604-133";
    cpu_mhz = 133;
    bytes_per_instruction = 4;
    base_cpi = 1.85;
    icache = { size = kib 16; line = 32; assoc = 4 };
    dcache = { size = kib 16; line = 32; assoc = 4 };
    line_fill_cycles = 22;
    line_fill_bus_cycles = 6;
    write_bus_cycles = 4;
    tlb_entries = 128;
    tlb_miss_cycles = 28;
    tlb_miss_bus_cycles = 4;
    address_space_switch_cycles = 30;
    page_size = 4096;
    memory_bytes = mib 64;
    ncpus = 1;
    coherence_miss_cycles = 36;
    ipi_cycles = 50;
  }

let with_memory t ~bytes = { t with memory_bytes = bytes }

let with_ncpus t ~n =
  if n < 1 then invalid_arg "Config.with_ncpus: need at least one CPU";
  { t with ncpus = n }

let pages t = t.memory_bytes / t.page_size

let pp ppf t =
  Format.fprintf ppf
    "%s: %d MHz x%d CPU%s, I$ %dK/%d-way, D$ %dK/%d-way, %d MB RAM" t.name
    t.cpu_mhz t.ncpus
    (if t.ncpus = 1 then "" else "s")
    (t.icache.size / 1024) t.icache.assoc (t.dcache.size / 1024)
    t.dcache.assoc
    (t.memory_bytes / (1024 * 1024))
