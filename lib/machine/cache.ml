type t = {
  line : int;
  sets : int;
  assoc : int;
  tags : int array array;  (* [set].[way]; -1 = invalid *)
  stamps : int array array;  (* LRU stamps parallel to [tags] *)
  mutable tick : int;
}

let create (g : Config.cache_geometry) =
  let sets = g.size / (g.line * g.assoc) in
  assert (sets > 0);
  {
    line = g.line;
    sets;
    assoc = g.assoc;
    tags = Array.init sets (fun _ -> Array.make g.assoc (-1));
    stamps = Array.init sets (fun _ -> Array.make g.assoc 0);
    tick = 0;
  }

let locate t addr =
  let line_addr = addr / t.line in
  let set = line_addr mod t.sets in
  let tag = line_addr / t.sets in
  (set, tag)

let find_way tags tag =
  let rec loop i =
    if i >= Array.length tags then None
    else if tags.(i) = tag then Some i
    else loop (i + 1)
  in
  loop 0

let lru_way t set =
  let stamps = t.stamps.(set) in
  let best = ref 0 in
  for i = 1 to t.assoc - 1 do
    if stamps.(i) < stamps.(!best) then best := i
  done;
  !best

(* Zero-allocation variant of [locate]/[find_way]: this runs once per
   cache line touched by every simulated instruction fetch, load and
   store, so it must not build tuples or options. *)
let access t addr =
  let line_addr = addr / t.line in
  let set = line_addr mod t.sets in
  let tag = line_addr / t.sets in
  t.tick <- t.tick + 1;
  let tags = t.tags.(set) in
  let n = Array.length tags in
  let way =
    let rec find i = if i >= n then -1 else if tags.(i) = tag then i else find (i + 1) in
    find 0
  in
  if way >= 0 then begin
    t.stamps.(set).(way) <- t.tick;
    true
  end
  else begin
    let way = lru_way t set in
    tags.(way) <- tag;
    t.stamps.(set).(way) <- t.tick;
    false
  end

let probe t addr =
  let set, tag = locate t addr in
  match find_way t.tags.(set) tag with Some _ -> true | None -> false

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1)) t.tags

let lines t = t.sets * t.assoc

let resident t =
  Array.fold_left
    (fun acc ways ->
      Array.fold_left (fun a tag -> if tag >= 0 then a + 1 else a) acc ways)
    0 t.tags
