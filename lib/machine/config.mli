(** Static description of a simulated machine.

    The configuration fixes the microarchitectural parameters that the cost
    model charges against: cache and TLB geometry, miss penalties, bus
    transaction costs and physical memory size.  Two presets reproduce the
    hardware used in the paper's evaluation: a 133 MHz Pentium (the Table 2
    machine, 16 MB in the Table 1 comparison) and a 133 MHz PowerPC 604
    (the Table 1 WPOS machine, 64 MB). *)

type cache_geometry = {
  size : int;  (** total bytes *)
  line : int;  (** line size in bytes *)
  assoc : int;  (** ways per set *)
}

type t = {
  name : string;
  cpu_mhz : int;
  bytes_per_instruction : int;
      (** average encoded instruction length; fetched bytes are converted
          to retired instructions with this divisor *)
  base_cpi : float;  (** cycles per instruction absent any stall *)
  icache : cache_geometry;
  dcache : cache_geometry;
  line_fill_cycles : int;  (** stall cycles per cache line fill *)
  line_fill_bus_cycles : int;  (** bus cycles per cache line fill *)
  write_bus_cycles : int;
      (** bus cycles per 4-byte word stored (write-through D-cache) *)
  tlb_entries : int;
  tlb_miss_cycles : int;  (** page-walk stall per TLB miss *)
  tlb_miss_bus_cycles : int;  (** bus cycles per page walk *)
  address_space_switch_cycles : int;
      (** fixed pipeline/CR3-write cost of an address-space switch,
          excluding the TLB refill cost it induces *)
  page_size : int;
  memory_bytes : int;
  ncpus : int;
      (** simulated processors sharing the bus; 1 everywhere except the
          SMP experiments, so single-core series are untouched *)
  coherence_miss_cycles : int;
      (** stall for a cache-to-cache line transfer when a CPU touches a
          line another CPU wrote (only charged when [ncpus > 1]) *)
  ipi_cycles : int;
      (** sender-side cost of raising an inter-processor interrupt *)
}

val pentium_133 : t
(** The Table 2 measurement machine: 8 KB + 8 KB 2-way 32-byte-line
    caches, write-through data cache, 16 MB of memory. *)

val ppc604_133 : t
(** The WPOS Table 1 machine: 16 KB + 16 KB 4-way caches, 64 MB. *)

val with_memory : t -> bytes:int -> t
(** [with_memory c ~bytes] is [c] resized to [bytes] of physical memory. *)

val with_ncpus : t -> n:int -> t
(** [with_ncpus c ~n] is [c] with [n] simulated processors.
    @raise Invalid_argument when [n < 1]. *)

val pages : t -> int
(** Number of physical page frames. *)

val pp : Format.formatter -> t -> unit
