(** Simulated block storage device.

    Holds real block contents (so the file systems above it have genuine
    on-disk layouts) and models service time as seek + per-block transfer.
    Requests are serviced one at a time in FIFO order; completion raises
    the device's interrupt line and then invokes the request's
    continuation.  DMA transfer bus traffic is charged on completion. *)

type t

type geometry = {
  blocks : int;
  block_size : int;
  seek_cycles : int;  (** fixed positioning cost per request *)
  transfer_cycles_per_block : int;
}

val default_geometry : geometry
(** 20 MB at 512-byte blocks with early-1990s service times. *)

val create :
  Cpu.t -> Event_queue.t -> Irq.t -> line:int -> name:string -> geometry -> t

val name : t -> string
val geometry : t -> geometry

val read : t -> block:int -> count:int -> (bytes -> unit) -> unit
(** Asynchronous read of [count] blocks starting at [block]; the
    continuation receives the data when the simulated transfer completes.
    @raise Invalid_argument on out-of-range requests. *)

val write : t -> block:int -> bytes -> (unit -> unit) -> unit
(** Asynchronous write; [bytes] must be a whole number of blocks. *)

val read_now : t -> block:int -> count:int -> bytes
(** Synchronous, zero-cost peek for tests and mkfs-style tools. *)

val write_now : t -> block:int -> bytes -> unit
(** Dropped silently while the device is powered off. *)

val barrier : t -> (unit -> unit) -> unit
(** Cache-flush command: completes once every previously submitted
    request has reached the media, forcing any reorder-held writes to
    land first.  Completes immediately when the device is idle. *)

(** Decision an installed write interceptor returns for one write
    request as it reaches the media.  The [int] payloads are raw
    entropy from the fault plan's PRNG; the disk maps them into range. *)
type write_fault =
  | Wf_pass
  | Wf_power_cut
      (** freeze the store: this write and all later ones are lost *)
  | Wf_torn of int  (** only a prefix of the write lands *)
  | Wf_bit_rot of int  (** the write lands, then one bit flips *)
  | Wf_reorder of int
      (** hold the write past this many later writes (or the next barrier) *)

val set_write_interceptor :
  t -> (block:int -> data:bytes -> write_fault) option -> unit
(** Installed by the driver layer to route media writes through a fault
    plan.  Consulted at apply time, in FIFO order.  Not consulted for
    [write_now] (mkfs-style tooling) or while powered off. *)

val power_cut : t -> unit
(** Host-level power loss: freeze the store, discard held writes.
    Subsequent requests still complete (the simulation keeps running)
    but writes no longer touch the media. *)

val power_restore : t -> unit
val powered_on : t -> bool

val writes_applied : t -> int
(** Number of write requests that reached the media while powered —
    the crash-point index space for recovery enumeration. *)

val requests_served : t -> int
val busy : t -> bool
