type geometry = {
  blocks : int;
  block_size : int;
  seek_cycles : int;
  transfer_cycles_per_block : int;
}

(* What a write interceptor may decide about one write request as it
   reaches the media.  The disk itself knows nothing about fault plans;
   the driver layer installs an interceptor that consults one. *)
type write_fault =
  | Wf_pass
  | Wf_power_cut  (* this write and everything after it is lost *)
  | Wf_torn of int  (* entropy: only a prefix of the sectors land *)
  | Wf_bit_rot of int  (* entropy: one bit of the landed data flips *)
  | Wf_reorder of int  (* hold the write past this many later writes *)

type request =
  | Read of { block : int; count : int; k : bytes -> unit }
  | Write of { block : int; data : bytes; k : unit -> unit }
  | Barrier of { k : unit -> unit }

(* a reordered write waiting to land: countdown in later write events *)
type held = { mutable h_ttl : int; h_block : int; h_data : bytes }

type t = {
  cpu : Cpu.t;
  events : Event_queue.t;
  irq : Irq.t;
  line : int;
  name : string;
  geometry : geometry;
  store : bytes;
  mutable queue : request list;  (* reversed: newest first *)
  mutable busy : bool;
  mutable served : int;
  mutable pending_completion : (unit -> unit) option;
  mutable interceptor : (block:int -> data:bytes -> write_fault) option;
  mutable powered : bool;
  mutable held : held list;  (* oldest first *)
  mutable writes_applied : int;  (* write events observed while powered *)
}

let default_geometry =
  {
    blocks = 40960;
    block_size = 512;
    (* ~3 ms positioning + ~60 us/block at 133 MHz *)
    seek_cycles = 400_000;
    transfer_cycles_per_block = 8_000;
  }

let create cpu events irq ~line ~name geometry =
  let t =
    {
      cpu;
      events;
      irq;
      line;
      name;
      geometry;
      store = Bytes.make (geometry.blocks * geometry.block_size) '\000';
      queue = [];
      busy = false;
      served = 0;
      pending_completion = None;
      interceptor = None;
      powered = true;
      held = [];
      writes_applied = 0;
    }
  in
  Irq.register irq ~line ~name (fun () ->
      match t.pending_completion with
      | Some k ->
          t.pending_completion <- None;
          k ()
      | None -> ());
  t

let name t = t.name
let geometry t = t.geometry

let check t ~block ~count =
  if block < 0 || count <= 0 || block + count > t.geometry.blocks then
    invalid_arg
      (Printf.sprintf "Disk.%s: request %d+%d out of range (%d blocks)"
         t.name block count t.geometry.blocks)

let request_cycles t count =
  t.geometry.seek_cycles + (count * t.geometry.transfer_cycles_per_block)

let blocks_of_request = function
  | Read { count; _ } -> count
  | Write { data; _ } -> Bytes.length data
  | Barrier _ -> 0

(* --- media application, with the interceptor in the path ----------------- *)

let land_write t ~block data =
  Bytes.blit data 0 t.store (block * t.geometry.block_size) (Bytes.length data)

let release_held t =
  let ready = t.held in
  t.held <- [];
  if t.powered then List.iter (fun h -> land_write t ~block:h.h_block h.h_data) ready

(* age every held write by one write event; those past their window land *)
let tick_held t =
  List.iter (fun h -> h.h_ttl <- h.h_ttl - 1) t.held;
  let ready, still = List.partition (fun h -> h.h_ttl <= 0) t.held in
  t.held <- still;
  if t.powered then List.iter (fun h -> land_write t ~block:h.h_block h.h_data) ready

(* One write request reaching the media, in FIFO order.  Power loss
   freezes the store: the write (and every later one) is dropped, though
   the request still completes — the machine lost power, not the
   simulation's event plumbing. *)
let apply_write t ~block data =
  if t.powered then begin
    t.writes_applied <- t.writes_applied + 1;
    let fault =
      match t.interceptor with
      | None -> Wf_pass
      | Some f -> f ~block ~data
    in
    (match fault with
    | Wf_pass -> land_write t ~block data
    | Wf_power_cut ->
        t.powered <- false;
        t.held <- []
    | Wf_torn r ->
        (* a prefix of the write lands, torn at a 4-byte granule *)
        let len = Bytes.length data in
        let keep = r mod (len / 4) * 4 in
        if keep > 0 then
          Bytes.blit data 0 t.store (block * t.geometry.block_size) keep
    | Wf_bit_rot r ->
        land_write t ~block data;
        let bit = r mod (Bytes.length data * 8) in
        let off = (block * t.geometry.block_size) + (bit / 8) in
        let v = Char.code (Bytes.get t.store off) lxor (1 lsl (bit mod 8)) in
        Bytes.set t.store off (Char.chr v)
    | Wf_reorder n ->
        t.held <-
          t.held @ [ { h_ttl = max 1 n; h_block = block; h_data = Bytes.copy data } ]);
    if t.powered then tick_held t
  end

let rec start t req =
  t.busy <- true;
  let count =
    match req with
    | Read { count; _ } -> count
    | Write { data; _ } -> Bytes.length data / t.geometry.block_size
    | Barrier _ -> 0
  in
  let done_at = Cpu.now t.cpu + request_cycles t count in
  Event_queue.schedule t.events ~at:done_at (fun () -> complete t req)

and complete t req =
  let bs = t.geometry.block_size in
  let finish k =
    t.served <- t.served + 1;
    (* DMA moved [blocks] of data across the bus during the transfer *)
    let words = blocks_of_request req * bs / 4 in
    Perf.add_bus_cycles (Cpu.perf t.cpu) (words / 8);
    t.pending_completion <- Some k;
    Irq.raise_line t.irq t.line;
    t.busy <- false;
    match List.rev t.queue with
    | [] -> ()
    | next :: rest ->
        t.queue <- List.rev rest;
        start t next
  in
  match req with
  | Read { block; count; k } ->
      let data = Bytes.sub t.store (block * bs) (count * bs) in
      finish (fun () -> k data)
  | Write { block; data; k } ->
      apply_write t ~block data;
      finish k
  | Barrier { k } ->
      release_held t;
      finish k

let submit t req =
  if t.busy then t.queue <- req :: t.queue else start t req

let read t ~block ~count k =
  check t ~block ~count;
  submit t (Read { block; count; k })

let write t ~block data k =
  let bs = t.geometry.block_size in
  if Bytes.length data = 0 || Bytes.length data mod bs <> 0 then
    invalid_arg "Disk.write: data must be a whole number of blocks";
  check t ~block ~count:(Bytes.length data / bs);
  submit t (Write { block; data; k })

let barrier t k =
  if t.busy || t.queue <> [] then submit t (Barrier { k })
  else begin
    (* idle disk: the flush has nothing to wait for *)
    release_held t;
    k ()
  end

let read_now t ~block ~count =
  check t ~block ~count;
  Bytes.sub t.store (block * t.geometry.block_size)
    (count * t.geometry.block_size)

let write_now t ~block data =
  let bs = t.geometry.block_size in
  if Bytes.length data = 0 || Bytes.length data mod bs <> 0 then
    invalid_arg "Disk.write_now: data must be a whole number of blocks";
  check t ~block ~count:(Bytes.length data / bs);
  if t.powered then Bytes.blit data 0 t.store (block * bs) (Bytes.length data)

let set_write_interceptor t f = t.interceptor <- f

let power_cut t =
  t.powered <- false;
  t.held <- []

let power_restore t = t.powered <- true
let powered_on t = t.powered
let writes_applied t = t.writes_applied
let requests_served t = t.served
let busy t = t.busy || t.queue <> []
