(** Fully-associative translation lookaside buffer with LRU replacement.

    Keyed on virtual page number.  The simulated architecture has untagged
    TLB entries (x86 CR3 semantics), so an address-space switch must
    {!flush} — this is the mechanism behind the RPC path's extra page
    walks in Table 2. *)

type t

val create : entries:int -> page_size:int -> t

val access : t -> int -> bool
(** [access t vaddr] is [true] when the page holding [vaddr] is resident;
    on miss the translation is installed (evicting LRU). *)

val invalidate : t -> int -> unit
(** [invalidate t vaddr] drops the translation for the page holding
    [vaddr], if resident.  Other entries are untouched — this is the
    single-page [invlpg] a remap shootdown issues, not a full flush. *)

val flush : t -> unit
val entries : t -> int
val resident : t -> int
