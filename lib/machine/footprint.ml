type item =
  | Fetch of { region : Layout.region; offset : int; bytes : int }
  | Load of { addr : int; bytes : int }
  | Store of { addr : int; bytes : int }
  | Uncached_read of { addr : int; bytes : int }
  | Uncached_write of { addr : int; bytes : int }
  | Switch_address_space
  | Stall of int

type t = item list

let fetch region ?(offset = 0) ~bytes () =
  if offset + bytes > region.Layout.size then
    invalid_arg
      (Printf.sprintf "Footprint.fetch: %d+%d exceeds region %S (%d bytes)"
         offset bytes region.Layout.name region.Layout.size);
  Fetch { region; offset; bytes }

let load ~addr ~bytes = Load { addr; bytes }
let store ~addr ~bytes = Store { addr; bytes }

let run region ?(offset = 0) ~code_bytes ?(loads = []) ?(stores = []) () =
  fetch region ~offset ~bytes:code_bytes ()
  :: (List.map (fun (addr, bytes) -> Load { addr; bytes }) loads
     @ List.map (fun (addr, bytes) -> Store { addr; bytes }) stores)

let copy ~src ~dst ~bytes =
  let chunk = 32 in
  let rec loop off acc =
    if off >= bytes then List.rev acc
    else
      let n = min chunk (bytes - off) in
      loop (off + chunk)
        (Store { addr = dst + off; bytes = n }
        :: Load { addr = src + off; bytes = n }
        :: acc)
  in
  loop 0 []

let touch_region (r : Layout.region) =
  let page = 4096 in
  let rec loop off acc =
    if off >= r.size then List.rev acc
    else loop (off + page) (Load { addr = r.base + off; bytes = 4 } :: acc)
  in
  loop 0 []

(* Machine-state accounting: the bytes of hardware bookkeeping state the
   simulated machine itself carries.  Caches and TLBs are per-CPU
   structures, so an SMP machine multiplies them by [ncpus] — a density
   measurement that counted one copy would undercount the machine's real
   footprint on every added processor. *)

type machine_state = {
  ms_ncpus : int;
  ms_cache_bytes_per_cpu : int;  (* I$ + D$ data plus tag/state arrays *)
  ms_tlb_bytes_per_cpu : int;
  ms_bus_directory_bytes : int;  (* coherence directory, one per machine *)
  ms_total_bytes : int;
}

let cache_state_bytes (g : Config.cache_geometry) =
  (* data array plus a tag/state word per line *)
  let lines = g.Config.size / g.Config.line in
  g.Config.size + (lines * 4)

let machine_state (c : Config.t) =
  let cache_bytes = cache_state_bytes c.icache + cache_state_bytes c.dcache in
  (* one TLB entry: virtual page tag, physical frame, permission bits *)
  let tlb_bytes = c.tlb_entries * 8 in
  (* the write-invalidate directory exists only on multiprocessors; its
     shadow is sized like a page-table leaf per tracked line window *)
  let dir_bytes = if c.ncpus > 1 then 4096 * 8 else 0 in
  {
    ms_ncpus = c.ncpus;
    ms_cache_bytes_per_cpu = cache_bytes;
    ms_tlb_bytes_per_cpu = tlb_bytes;
    ms_bus_directory_bytes = dir_bytes;
    ms_total_bytes = (c.ncpus * (cache_bytes + tlb_bytes)) + dir_bytes;
  }

let code_bytes t =
  List.fold_left
    (fun acc -> function Fetch { bytes; _ } -> acc + bytes | _ -> acc)
    0 t

let pp_item ppf = function
  | Fetch { region; offset; bytes } ->
      Format.fprintf ppf "fetch %s+%d (%d B)" region.Layout.name offset bytes
  | Load { addr; bytes } -> Format.fprintf ppf "load 0x%x (%d B)" addr bytes
  | Store { addr; bytes } -> Format.fprintf ppf "store 0x%x (%d B)" addr bytes
  | Uncached_read { addr; bytes } ->
      Format.fprintf ppf "ucread 0x%x (%d B)" addr bytes
  | Uncached_write { addr; bytes } ->
      Format.fprintf ppf "ucwrite 0x%x (%d B)" addr bytes
  | Switch_address_space -> Format.fprintf ppf "switch-as"
  | Stall n -> Format.fprintf ppf "stall %d" n

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_item) t
