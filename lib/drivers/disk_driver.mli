(** The same disk driver under the three architectures the project used.

    All three serve the same request — read or write N blocks through DMA
    with a completion interrupt — against the machine's disk, so
    experiment E8 can compare architectures on identical work:

    - {b User-level} (the initial design): the driver is a thread in its
      own task; interrupts are reflected out of the kernel to it, and
      clients reach it through RPC.
    - {b In-kernel BSD-style} (kept for networking): a trap enters the
      kernel, the driver runs there, the interrupt is handled in-kernel.
    - {b OODDM} (Taligent): in-kernel, but the driver is a subclass in a
      fine-grained object framework; every step is virtual dispatch
      through the kernel C++ runtime. *)

type t

type arch = User_level | Kernel_bsd | Ooddm

val start :
  Mach.Kernel.t -> Resource_manager.t -> arch:arch -> (t, string) result
(** Claims the disk's IRQ line and DMA channel from the resource manager
    and brings the driver online. *)

val arch : t -> arch

val read_blocks : t -> block:int -> count:int -> bytes
(** Synchronous read from the calling thread. *)

val write_blocks : t -> block:int -> bytes -> unit

val requests : t -> int
val interrupts_taken : t -> int
val driver_task : t -> Mach.Ktypes.task option
(** The driver task ([Some] only for the user-level architecture). *)

val arm_faults : Mach.Kernel.t -> Machine.Disk.t -> unit
(** Install a write interceptor on the disk that consults the kernel's
    fault plan ([sys.faults]) at every media write, mapping
    {!Mach.Fault.disk_decision}s to device faults (power-cut, torn
    write, bit-rot, bounded reordering).  With no plan installed every
    write passes untouched. *)

val disarm_faults : Machine.Disk.t -> unit
