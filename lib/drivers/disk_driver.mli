(** The same disk driver under the three architectures the project used.

    All three serve the same request — read or write N blocks through DMA
    with a completion interrupt — against the machine's disk, so
    experiment E8 can compare architectures on identical work:

    - {b User-level} (the initial design): the driver is a thread in its
      own task; interrupts are reflected out of the kernel to it, and
      clients reach it through RPC.
    - {b In-kernel BSD-style} (kept for networking): a trap enters the
      kernel, the driver runs there, the interrupt is handled in-kernel.
    - {b OODDM} (Taligent): in-kernel, but the driver is a subclass in a
      fine-grained object framework; every step is virtual dispatch
      through the kernel C++ runtime. *)

type t

type arch = User_level | Kernel_bsd | Ooddm

val start :
  Mach.Kernel.t -> Resource_manager.t -> arch:arch -> (t, string) result
(** Claims the disk's IRQ line and DMA channel from the resource manager
    and brings the driver online. *)

val arch : t -> arch

val read_blocks : t -> block:int -> count:int -> bytes
(** Synchronous read from the calling thread. *)

val write_blocks : t -> block:int -> bytes -> unit

val restart_user : t -> Mach.Ktypes.port
(** Reincarnate a crashed or wedge-killed user-level instance: the old
    service and health ports are retired, fresh ones (and a fresh beat)
    allocated, and new serve/health threads spawned.  Returns the new
    service port — the supervisor's [restart] closure for the driver.
    @raise Invalid_argument for the in-kernel architectures. *)

val requests : t -> int
val interrupts_taken : t -> int
val driver_task : t -> Mach.Ktypes.task option
(** The driver task ([Some] only for the user-level architecture). *)

val port : t -> Mach.Ktypes.port option
(** The current service port ([Some] only for user-level). *)

val health_port : t -> Mach.Ktypes.port option
(** The current incarnation's heartbeat port ([Some] only for
    user-level); answers {!Mach.Health.H_ping} off the serve loop's
    beat. *)

val arm_faults : Mach.Kernel.t -> Machine.Disk.t -> unit
(** Install a write interceptor on the disk that consults the kernel's
    fault plan ([sys.faults]) at every media write, mapping
    {!Mach.Fault.disk_decision}s to device faults (power-cut, torn
    write, bit-rot, bounded reordering).  With no plan installed every
    write passes untouched. *)

val disarm_faults : Machine.Disk.t -> unit
