open Mach.Ktypes

type arch = User_level | Kernel_bsd | Ooddm

type payload +=
  | DD_read of { block : int; count : int }
  | DD_write of { block : int; data : bytes }
  | DD_r_data of bytes
  | DD_r_done

type t = {
  kernel : Mach.Kernel.t;
  a : arch;
  disk : Machine.Disk.t;
  mutable reqs : int;
  mutable intrs : int;
  (* user-level architecture *)
  u_task : task option;
  mutable u_port : port option;
  mutable u_beat : Mach.Health.beat option;
  mutable u_health : port option;
  mutable u_generation : int;
  (* OODDM architecture *)
  oo_runtime : Finegrain.t option;
  oo_driver : Finegrain.obj option;
}

let block_size t = (Machine.Disk.geometry t.disk).Machine.Disk.block_size

let sys t = t.kernel.Mach.Kernel.sys

(* block the calling thread until the disk completion runs *)
let await_disk t submit =
  let s = sys t in
  let th = Mach.Sched.self () in
  let result = ref None in
  submit (fun data ->
      t.intrs <- t.intrs + 1;
      (* the completion runs in interrupt context; charge by model *)
      (match t.a with
      | Kernel_bsd ->
          Mach.Ktext.exec s.Mach.Sched.ktext
            [ Mach.Ktext.irq_entry s.Mach.Sched.ktext ]
      | User_level ->
          Mach.Ktext.exec s.Mach.Sched.ktext
            [ Mach.Ktext.irq_entry s.Mach.Sched.ktext;
              Mach.Ktext.irq_reflect s.Mach.Sched.ktext ]
      | Ooddm -> (
          Mach.Ktext.exec s.Mach.Sched.ktext
            [ Mach.Ktext.irq_entry s.Mach.Sched.ktext ];
          match (t.oo_runtime, t.oo_driver) with
          | Some rt, Some d -> Finegrain.invoke rt d ~work_units:10
          | _ -> ()));
      result := Some data;
      Mach.Sched.wake s th);
  let rec wait () =
    match !result with
    | Some data -> data
    | None ->
        ignore (Mach.Sched.block "disk-driver" : kern_return);
        wait ()
  in
  wait ()

let kernel_entry t =
  let s = sys t in
  let th = Mach.Sched.self () in
  Mach.Ktext.exec_in s.Mach.Sched.ktext th.t_task.text ~offset:0x100 ~bytes:128;
  Mach.Ktext.exec s.Mach.Sched.ktext ~frame:th.stack_base
    [ Mach.Ktext.trap_entry s.Mach.Sched.ktext;
      Mach.Ktext.syscall_dispatch s.Mach.Sched.ktext ]

let kernel_exit t =
  let s = sys t in
  let th = Mach.Sched.self () in
  Mach.Ktext.exec s.Mach.Sched.ktext ~frame:th.stack_base
    [ Mach.Ktext.trap_exit s.Mach.Sched.ktext ]

let dma_setup t =
  Mach.Ktext.exec (sys t).Mach.Sched.ktext
    [ Mach.Ktext.dma_setup (sys t).Mach.Sched.ktext ]

(* the driver body shared by every architecture *)
let do_read t ~block ~count =
  t.reqs <- t.reqs + 1;
  dma_setup t;
  await_disk t (fun k -> Machine.Disk.read t.disk ~block ~count k)

let do_write t ~block data =
  t.reqs <- t.reqs + 1;
  dma_setup t;
  await_disk t (fun k ->
      Machine.Disk.write t.disk ~block data (fun () -> k Bytes.empty))
  |> fun (_ : bytes) -> ()

let user_serve t port =
  let s = sys t in
  Mach.Rpc.serve s ?beat:t.u_beat port (fun req ->
      match req.msg_payload with
      | DD_read { block; count } ->
          let data = do_read t ~block ~count in
          simple_message ~inline_bytes:(Bytes.length data)
            ~payload:(DD_r_data data) ()
      | DD_write { block; data } ->
          do_write t ~block data;
          simple_message ~payload:DD_r_done ()
      | _ -> simple_message ~payload:(P_error Kern_invalid_argument) ())

(* Spawn the heartbeat thread for the user-level instance: answers pings
   off the serve loop's beat so a wedged dd-serve is detectable. *)
let spawn_health t u_task ~gen =
  let s = sys t in
  match (t.u_health, t.u_beat) with
  | Some hp, Some beat ->
      ignore
        (Mach.Kernel.thread_spawn t.kernel u_task
           ~name:(Printf.sprintf "dd-health.%d" gen) (fun () ->
             Mach.Rpc.serve s hp (Mach.Health.handler beat))
          : thread)
  | _ -> ()

let start (kernel : Mach.Kernel.t) rm ~arch =
  let driver_name =
    match arch with
    | User_level -> "disk.user"
    | Kernel_bsd -> "disk.bsd"
    | Ooddm -> "disk.ooddm"
  in
  let claim r =
    Result.map ignore (Resource_manager.request rm ~driver:driver_name r ())
  in
  match
    (claim (Resource_manager.Irq_line Machine.disk_irq_line),
     claim (Resource_manager.Dma_channel 2))
  with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
      let disk = kernel.Mach.Kernel.machine.Machine.disk in
      let base =
        {
          kernel;
          a = arch;
          disk;
          reqs = 0;
          intrs = 0;
          u_task = None;
          u_port = None;
          u_beat = None;
          u_health = None;
          u_generation = 0;
          oo_runtime = None;
          oo_driver = None;
        }
      in
      (match arch with
      | Kernel_bsd -> Ok base
      | Ooddm ->
          let rt =
            Finegrain.create kernel ~style:Finegrain.Fine_grained
              ~name:"ooddm"
          in
          let io_dev = Finegrain.define_class rt ~name:"TIODevice" () in
          let blockdev =
            Finegrain.define_class rt ~name:"TBlockDevice" ~super:io_dev ()
          in
          let diskk =
            Finegrain.define_class rt ~name:"TDiskDriver" ~super:blockdev ()
          in
          Ok
            {
              base with
              oo_runtime = Some rt;
              oo_driver = Some (Finegrain.new_object rt diskk);
            }
      | User_level ->
          let s = kernel.Mach.Kernel.sys in
          Mach.Sched.with_uncharged s (fun () ->
              let u_task =
                Mach.Kernel.task_create kernel ~name:"disk-driver"
                  ~personality:"pn" ()
              in
              let u_port =
                Mach.Port.allocate s ~receiver:u_task ~name:"disk-driver"
              in
              let t =
                {
                  base with
                  u_task = Some u_task;
                  u_port = Some u_port;
                  u_beat = Some (Mach.Health.beat ());
                  u_health =
                    Some
                      (Mach.Port.allocate s ~receiver:u_task
                         ~name:"disk-health");
                }
              in
              ignore
                (Mach.Kernel.thread_spawn kernel u_task ~name:"dd-serve"
                   (fun () -> user_serve t u_port)
                  : thread);
              spawn_health t u_task ~gen:0;
              Ok t))

let arch t = t.a

let read_blocks t ~block ~count =
  match t.a with
  | Kernel_bsd ->
      kernel_entry t;
      let data = do_read t ~block ~count in
      kernel_exit t;
      data
  | Ooddm ->
      kernel_entry t;
      (match (t.oo_runtime, t.oo_driver) with
      | Some rt, Some d -> Finegrain.invoke rt d ~work_units:20
      | _ -> ());
      let data = do_read t ~block ~count in
      kernel_exit t;
      data
  | User_level -> (
      let s = sys t in
      match t.u_port with
      | None -> assert false
      | Some port -> (
          match
            Mach.Rpc.call s port
              (simple_message ~inline_bytes:32
                 ~payload:(DD_read { block; count })
                 ())
          with
          | Ok { msg_payload = DD_r_data data; _ } -> data
          | Ok { msg_payload = P_error _; _ } ->
              (* driver refused the request: surface as an empty read,
                 the same contract a short read gives the block layer *)
              Bytes.empty
          | Ok _ | Error _ -> Bytes.empty))

let write_blocks t ~block data =
  match t.a with
  | Kernel_bsd ->
      kernel_entry t;
      do_write t ~block data;
      kernel_exit t
  | Ooddm ->
      kernel_entry t;
      (match (t.oo_runtime, t.oo_driver) with
      | Some rt, Some d -> Finegrain.invoke rt d ~work_units:20
      | _ -> ());
      do_write t ~block data;
      kernel_exit t
  | User_level -> (
      let s = sys t in
      match t.u_port with
      | None -> assert false
      | Some port -> (
          match
            Mach.Rpc.call s port
              (simple_message
                 ~inline_bytes:(Bytes.length data + 32)
                 ~payload:(DD_write { block; data })
                 ())
          with
          | Ok { msg_payload = DD_r_done; _ } -> ()
          | Ok { msg_payload = P_error _; _ } ->
              (* lost ack: write-behind semantics, nothing to retry here *)
              ()
          | Ok _ | Error _ -> ()))

(* Reincarnate a crashed (or wedge-killed) user-level instance: fresh
   service and health ports, fresh beat, new serve and health threads.
   The claimed IRQ/DMA resources and the media itself survive — only the
   serving state was lost.  The supervisor's [restart] closure for the
   driver is exactly this. *)
let restart_user t =
  match t.u_task with
  | None -> invalid_arg "Disk_driver.restart_user: not a user-level driver"
  | Some u_task ->
      let s = sys t in
      Mach.Sched.with_uncharged s (fun () ->
          t.u_generation <- t.u_generation + 1;
          (match t.u_port with
          | Some p when not p.dead -> Mach.Port.destroy s p
          | _ -> ());
          (match t.u_health with
          | Some p when not p.dead -> Mach.Port.destroy s p
          | _ -> ());
          let u_port =
            Mach.Port.allocate s ~receiver:u_task ~name:"disk-driver"
          in
          t.u_port <- Some u_port;
          t.u_beat <- Some (Mach.Health.beat ());
          t.u_health <-
            Some (Mach.Port.allocate s ~receiver:u_task ~name:"disk-health");
          ignore
            (Mach.Kernel.thread_spawn t.kernel u_task
               ~name:(Printf.sprintf "dd-serve.%d" t.u_generation) (fun () ->
                 user_serve t u_port)
              : thread);
          spawn_health t u_task ~gen:t.u_generation;
          u_port)

let requests t = t.reqs
let interrupts_taken t = t.intrs
let driver_task t = t.u_task
let port t = t.u_port
let health_port t = t.u_health

(* --- storage fault injection -------------------------------------------- *)

(* Route every media write of [disk] through the kernel's fault plan.
   The interceptor reads [sys.faults] at each write, so plans can be
   installed, swapped, or cleared without re-arming; with no plan (or
   Machcheck-style off mode) the write passes untouched.  Reorder holds
   are bounded to a small window — barriers flush them regardless. *)
let arm_faults (kernel : Mach.Kernel.t) disk =
  let sys = kernel.Mach.Kernel.sys in
  let dname = Machine.Disk.name disk in
  Machine.Disk.set_write_interceptor disk
    (Some
       (fun ~block:_ ~data:_ ->
         match sys.Mach.Sched.faults with
         | None -> Machine.Disk.Wf_pass
         | Some plan -> (
             match Mach.Fault.on_disk_write plan ~disk:dname with
             | Mach.Fault.D_pass -> Machine.Disk.Wf_pass
             | Mach.Fault.D_power_cut -> Machine.Disk.Wf_power_cut
             | Mach.Fault.D_torn r -> Machine.Disk.Wf_torn r
             | Mach.Fault.D_bit_rot r -> Machine.Disk.Wf_bit_rot r
             | Mach.Fault.D_reorder r ->
                 Machine.Disk.Wf_reorder (1 + (r mod 4)))))

let disarm_faults disk = Machine.Disk.set_write_interceptor disk None

let _ = block_size
