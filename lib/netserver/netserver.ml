(* The networking shared service, restructured after DragonFly's netisr
   model: incoming packets are hashed to a fixed per-CPU protocol thread
   (the shard's "netisr"), so every connection's socket and TCP state
   live in exactly one shard and are touched by exactly one thread —
   lock-free by construction.  With one shard (any uniprocessor boot)
   all of the machinery is inert and the server behaves, cycle for
   cycle, like the original single-loop implementation. *)

type proto = Udp | Tcp_syn | Tcp_synack | Tcp_ack | Tcp_data

type packet = {
  p_proto : proto;
  p_src : int;
  p_dst : int;
  p_bytes : int;
  p_conn : int;  (* TCP connection id *)
  p_zc : bool;  (* payload travels by page remap, not through the layers *)
  p_chunks : int;  (* scatter/gather descriptors (1 for a plain send) *)
  p_sent : int;  (* rx-ring-entry stamp (home CPU cycles), for latency probes *)
}

type sock_kind =
  | S_udp
  | S_listen of (int * int) Queue.t  (* pending (peer port, conn id) *)
  | S_tcp of int  (* connection id *)

type socket = {
  s_uid : int;  (* unique over the server's lifetime (ports are reused) *)
  s_port : int;
  s_home : int;  (* owning shard: the only shard that may deliver to it *)
  mutable s_kind : sock_kind;
  rx : (int * int) Queue.t;  (* (src port, bytes) *)
  mutable s_peer : int;  (* established TCP peer port; -1 when unknown *)
  mutable s_established : bool;
  mutable s_open : bool;
  mutable s_born : int;  (* creation stamp, for half-open reaping *)
  mutable s_waiter : Mach.Ktypes.thread option;
}

(* One protocol shard: socket/connection/port tables plus the rx ring
   its netisr thread drains.  Every field is only ever mutated from the
   shard's home context (its netisr thread, or — for the syscall-side
   tables — under the cross-shard registry protocol below). *)
type shard = {
  sh_id : int;
  sh_sockets : (int, socket) Hashtbl.t;  (* local port -> home socket *)
  sh_conns : (int, int) Hashtbl.t;  (* conn id -> live endpoints (0..2) *)
  sh_embryonic : (int, socket) Hashtbl.t;  (* conn -> half-open child *)
  sh_layers : Finegrain.obj array;  (* per-shard ethernet/ip/transport/socket *)
  sh_rx : packet Queue.t;  (* rx ring, fed by the wire, drained in batches *)
  mutable sh_wake_pending : bool;  (* doorbell already rung (LWKT batching) *)
  mutable sh_thread : Mach.Ktypes.thread option;  (* the netisr thread *)
  mutable sh_next_conn : int;  (* strided: shard k hands out k, k+n, ... *)
  mutable sh_port_hint : int;  (* next never-used ephemeral in our residue *)
  mutable sh_free_ports : int list;  (* closed ephemerals, O(1) reuse *)
  mutable sh_delivered : int;  (* packets this shard processed (occupancy) *)
  mutable sh_batches : int;  (* netisr drain activations *)
  mutable sh_dead : bool;  (* mid micro-reboot: tables gone, ring drops *)
  mutable sh_generation : int;  (* bumped per reincarnation *)
  mutable sh_reboot_drops : int;  (* in-flight packets lost to a reboot *)
}

type t = {
  kernel : Mach.Kernel.t;
  objrt : Finegrain.t;
  shards : shard array;
  port_owner : (int, int) Hashtbl.t;  (* registry: bound port -> shard *)
  port_sock : (int, socket) Hashtbl.t;
      (* the registry's socket records, carried by the bind messages: a
         reincarnating shard rebuilds its tables from these.  Socket
         buffers (the rx queues) live on the endpoint records the user
         tasks hold, not in the shard's tables — which is why data the
         protocol already acked survives a micro-reboot. *)
  backlog : int;  (* per-listener SYN backlog bound (backpressure) *)
  mutable next_uid : int;
  mutable packets : int;
  mutable checksummed : int;
  mutable zc_sends : int;
  mutable syn_drops : int;  (* SYNs refused by a full backlog *)
  mutable wire_drops : int;  (* packets lost to injected faults *)
  mutable reaped : int;  (* half-open sockets closed by the reaper *)
  mutable registry_msgs : int;  (* cross-shard port-registry messages *)
  mutable xshard_accepts : int;  (* accepts whose child lives elsewhere *)
  mutable probe : (int -> int -> unit) option;
      (* delivery probe: wire->socket latency of each packet, in cycles *)
  mutable netisr_task : Mach.Ktypes.task option;  (* home of netisr threads *)
  mutable reincarnations : int;  (* shard micro-reboots completed *)
}

let wire_latency = 2_000  (* cycles on the simulated segment *)
let header_bytes = 54  (* eth 14 + ip 20 + tcp 20 *)
let ephemeral_base = 32768
let default_backlog = 64

let sys t = t.kernel.Mach.Kernel.sys
let machine t = t.kernel.Mach.Kernel.machine
let nshards t = Array.length t.shards

(* --- steering ----------------------------------------------------------- *)

(* FNV-1a-style mix: the packet alone decides its shard, no shared
   lookup on the steering path. *)
let mix h x = (h lxor x) * 0x01000193 land 0x3fffffff
let fnv_seed = 0x811c9dc5 land 0x3fffffff

let shard_of_port t port =
  if nshards t = 1 then 0 else mix fnv_seed port mod nshards t

let shard_of_conn t conn =
  if nshards t = 1 then 0 else mix (mix fnv_seed conn) 0x9e3779b9 mod nshards t

(* Bound sockets (UDP binds, TCP listeners) home on the hash of their
   port; connection sockets home on the hash of their connection id —
   both ends of a connection land in the same shard, so established
   traffic never crosses. *)
let steer t (pkt : packet) =
  match pkt.p_proto with
  | Udp | Tcp_syn -> t.shards.(shard_of_port t pkt.p_dst)
  | Tcp_synack | Tcp_ack | Tcp_data -> t.shards.(shard_of_conn t pkt.p_conn)

(* The shard whose context the current CPU represents (syscall side). *)
let cpu_shard t =
  if nshards t = 1 then t.shards.(0)
  else t.shards.(Machine.active (machine t) mod nshards t)

(* --- cross-shard registry protocol -------------------------------------- *)

(* Port binds/unbinds and cross-shard accept installs travel as messages
   of the server's interface vocabulary.  In the simulator the dispatch
   is immediate (the registry is host-side state), but every crossing is
   counted and charged a message-sized cost so the protocol's price is
   visible in measurements. *)
type Mach.Ktypes.payload +=
  | Net_bind of { nb_port : int; nb_shard : int; nb_sock : socket }
  | Net_unbind of { nu_port : int }
  | Net_accept_install of { na_conn : int; na_port : int }

let xshard_cost = 120  (* cycles: one cache-to-cache message handoff *)

let registry_handle t (msg : Mach.Ktypes.payload) =
  match msg with
  | Net_bind { nb_port; nb_shard; nb_sock } ->
      Hashtbl.replace t.port_owner nb_port nb_shard;
      Hashtbl.replace t.port_sock nb_port nb_sock
  | Net_unbind { nu_port } ->
      Hashtbl.remove t.port_owner nu_port;
      Hashtbl.remove t.port_sock nu_port
  | Net_accept_install _ -> ()  (* install is performed by the target shard *)
  | _ -> ()  (* not a registry message; ignore *)

let xshard_post t ~(from : shard) ~(target : int) msg =
  if from.sh_id <> target && nshards t > 1 then begin
    t.registry_msgs <- t.registry_msgs + 1;
    Machine.execute (machine t) [ Machine.Footprint.Stall xshard_cost ]
  end;
  registry_handle t msg

let objects t = t.objrt
let packets_processed t = t.packets
let checksum_bytes t = t.checksummed
let zero_copy_sends t = t.zc_sends
let shard_count = nshards
let syn_drops t = t.syn_drops
let wire_drops t = t.wire_drops
let reaped_half_open t = t.reaped
let registry_messages t = t.registry_msgs
let cross_shard_accepts t = t.xshard_accepts
let shard_delivered t = Array.map (fun sh -> sh.sh_delivered) t.shards
let shard_batches t = Array.map (fun sh -> sh.sh_batches) t.shards
let shard_backlog t = Array.map (fun sh -> Queue.length sh.sh_rx) t.shards
let port_shard t ~port = shard_of_port t port

let half_open t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sh_embryonic) 0 t.shards

let set_delivery_probe t f = t.probe <- Some f
let clear_delivery_probe t = t.probe <- None

(* --- the stack walk ------------------------------------------------------ *)

(* walk the stack: one framework invocation per layer, work scaling with
   the bytes each layer handles; the IP layer also checksums.  A
   zero-copy packet's payload never passes through the layers — each one
   handles the header plus a descriptor of remapped pages, so only the
   header is touched and checksummed.  The layer objects are the
   *shard's own*: protocol state is per-CPU, after netisr. *)
let walk_stack t (sh : shard) ~bytes ~zc =
  t.packets <- t.packets + 1;
  let touched = if zc then header_bytes else bytes + header_bytes in
  t.checksummed <- t.checksummed + touched;
  Array.iter
    (fun layer ->
      Finegrain.invoke t.objrt layer ~work_units:(2 + (touched / 64)))
    sh.sh_layers

(* Payloads of at least a page go out by remap: the layers see a
   descriptor, the pages change hands at the map level.  Below that the
   map edit and shootdown cost more than just copying. *)
let zc_threshold = Mach.Ktypes.page_size

(* The pages the zero-copy path cycles through, for shootdown
   addressing — distinct from any kernel buffer so the invalidations
   don't alias the kbuf working set. *)
let zc_region t =
  let layout = (machine t).Machine.layout in
  match Machine.Layout.find layout "net.zc-pages" with
  | Some r -> r
  | None ->
      Machine.Layout.alloc layout ~name:"net.zc-pages"
        ~kind:Machine.Layout.Data
        ~size:(64 * Mach.Ktypes.page_size)

(* What a zero-copy transfer actually costs at each end of the wire: a
   map-entry edit per scatter/gather chunk plus one TLB shootdown over
   the remapped pages — never a per-byte term. *)
let charge_remap t ~chunks ~bytes =
  let ktext = (sys t).Mach.Sched.ktext in
  for _ = 1 to chunks do
    Mach.Ktext.exec1 ktext (Mach.Ktext.vm_remap_entry ktext)
  done;
  let region = zc_region t in
  Machine.Cpu.tlb_shootdown (machine t).Machine.cpu
    ~addr:region.Machine.Layout.base
    ~pages:(Mach.Ktypes.pages_of_bytes bytes)

let wake_sock t s =
  match s.s_waiter with
  | Some th ->
      s.s_waiter <- None;
      Mach.Sched.wake (sys t) th
  | None -> ()

let wait_on t s reason =
  s.s_waiter <- Some (Mach.Sched.self ());
  ignore (Mach.Sched.block reason : Mach.Ktypes.kern_return);
  ignore t

(* --- machcheck hook ------------------------------------------------------ *)

let chk t f =
  match (sys t).Mach.Sched.checks with
  | None -> ()
  | Some c -> f c (sys t).Mach.Sched.check_space

(* --- delivery: the netisr path ------------------------------------------- *)

let conn_incr sh conn =
  Hashtbl.replace sh.sh_conns conn
    (1 + Option.value ~default:0 (Hashtbl.find_opt sh.sh_conns conn))

let conn_decr sh conn =
  match Hashtbl.find_opt sh.sh_conns conn with
  | Some n when n > 1 -> Hashtbl.replace sh.sh_conns conn (n - 1)
  | Some _ -> Hashtbl.remove sh.sh_conns conn
  | None -> ()

let conn_live sh conn = Option.value ~default:0 (Hashtbl.find_opt sh.sh_conns conn)

(* The home shard's CPU-local clock.  Latency probes stamp and read this
   one clock, so the interval is the cycles that CPU spent between
   rx-ring entry and socket delivery — ring wait plus protocol work —
   independent of how far other CPUs' clocks have drifted. *)
let shard_clock t (sh : shard) =
  let m = machine t in
  Machine.Cpu.now (Machine.nth_cpu m (sh.sh_id mod Machine.ncpus m))

(* Process one packet inside its home shard: the protocol walk, the
   socket-table lookup and every socket mutation happen here and only
   here — the shard-crossing assertion in Machcheck watches this spot. *)
let rec process t (sh : shard) (pkt : packet) =
  walk_stack t sh ~bytes:pkt.p_bytes ~zc:pkt.p_zc;
  if pkt.p_zc then charge_remap t ~chunks:pkt.p_chunks ~bytes:pkt.p_bytes;
  sh.sh_delivered <- sh.sh_delivered + 1;
  (match t.probe with
  | Some f -> f sh.sh_id (max 0 (shard_clock t sh - pkt.p_sent))
  | None -> ());
  match Hashtbl.find_opt sh.sh_sockets pkt.p_dst with
  | None -> ()  (* dropped: no listener *)
  | Some s -> (
      chk t (fun c sp ->
          Check.net_touched c ~space:sp ~sock:s.s_uid ~home:s.s_home
            ~shard:sh.sh_id);
      match (pkt.p_proto, s.s_kind) with
      | Udp, S_udp ->
          Queue.add (pkt.p_src, pkt.p_bytes) s.rx;
          wake_sock t s
      | Tcp_syn, S_listen pending ->
          (* backpressure: a full backlog refuses the SYN instead of
             letting a flood grow server state without bound *)
          if Queue.length pending >= t.backlog then
            t.syn_drops <- t.syn_drops + 1
          else begin
            Queue.add (pkt.p_src, pkt.p_conn) pending;
            wake_sock t s
          end
      | Tcp_synack, S_tcp conn when conn = pkt.p_conn ->
          s.s_established <- true;
          s.s_peer <- pkt.p_src;
          transmit t
            { p_proto = Tcp_ack; p_src = s.s_port; p_dst = pkt.p_src;
              p_bytes = 0; p_conn = conn; p_zc = false; p_chunks = 1;
              p_sent = 0 };
          wake_sock t s
      | Tcp_ack, S_tcp conn when conn = pkt.p_conn ->
          s.s_established <- true;
          if s.s_peer < 0 then s.s_peer <- pkt.p_src;
          Hashtbl.remove sh.sh_embryonic conn;  (* handshake completed *)
          wake_sock t s
      | Tcp_data, S_tcp conn when conn = pkt.p_conn ->
          Queue.add (pkt.p_src, pkt.p_bytes) s.rx;
          wake_sock t s
      | (Udp | Tcp_syn | Tcp_synack | Tcp_ack | Tcp_data), _ -> ())

(* Drain the rx ring in bounded batches.  Runs on the shard's netisr
   thread (or directly in wire context on a single-shard server); it
   must never park the CPU mid-batch. *)
and[@machlint.no_block] drain t (sh : shard) =
  sh.sh_batches <- sh.sh_batches + 1;
  let budget = ref 32 in
  while !budget > 0 && not (Queue.is_empty sh.sh_rx) do
    process t sh (Queue.pop sh.sh_rx);
    decr budget
  done

(* Wire arrival.  One shard: the pre-netisr direct path, cycle-identical
   to the original single-loop server.  Sharded: enqueue on the home
   shard's ring and ring the doorbell only on the empty->pending
   transition (one wakeup covers a burst, after LWKT's IPI batching).
   The latency stamp is taken here, at rx-ring entry, against the home
   shard's own CPU clock: the probe measures the portion the netserver
   owns (ring wait plus protocol processing), not simulated wire
   travel. *)
and deliver t (pkt : packet) =
  let sh = steer t pkt in
  if sh.sh_dead then
    (* mid micro-reboot: the wire keeps arriving, the shard isn't there.
       Count the loss — closed-loop clients re-drive via their retry
       paths, so only unacked in-flight data is affected. *)
    sh.sh_reboot_drops <- sh.sh_reboot_drops + 1
  else begin
    let pkt = { pkt with p_sent = shard_clock t sh } in
    if nshards t = 1 then process t sh pkt
    else begin
      Queue.add pkt sh.sh_rx;
      if not sh.sh_wake_pending then begin
        sh.sh_wake_pending <- true;
        match sh.sh_thread with
        | Some th -> Mach.Sched.wake (sys t) th
        | None -> ()
      end
    end
  end

(* The wire hop: a fault-injection point (an installed plan may drop or
   delay packets — SYN storms ride this; with no plan the hook is one
   None match), then delivery after the segment's fixed latency.
   [transmit] charges the local sender's stack walk before entering
   here; raw injection ([inject_udp] / [inject_syn]) enters directly —
   an external client's transmit cost is not this machine's to pay. *)
and wire_send t pkt =
  let m = machine t in
  let decision =
    match (sys t).Mach.Sched.faults with
    | None -> Mach.Fault.M_pass
    | Some f ->
        Mach.Fault.on_send f ~port:(Printf.sprintf "net:%d" pkt.p_dst)
  in
  match decision with
  | Mach.Fault.M_drop -> t.wire_drops <- t.wire_drops + 1
  | Mach.Fault.M_pass ->
      Machine.Event_queue.schedule m.Machine.events
        ~at:(Machine.now m + wire_latency)
        (fun () -> deliver t pkt)
  | Mach.Fault.M_delay d ->
      Machine.Event_queue.schedule m.Machine.events
        ~at:(Machine.now m + wire_latency + d)
        (fun () -> deliver t pkt)

and transmit t pkt =
  walk_stack t (cpu_shard t) ~bytes:pkt.p_bytes ~zc:pkt.p_zc;
  if pkt.p_zc then begin
    t.zc_sends <- t.zc_sends + 1;
    charge_remap t ~chunks:pkt.p_chunks ~bytes:pkt.p_bytes
  end;
  wire_send t pkt

(* The per-shard protocol thread: drain, then sleep until the wire rings
   the doorbell again.  Spawned once per shard on a sharded server,
   affinity-bound to its CPU so shard state never migrates. *)
let rec netisr_loop t sh () =
  drain t sh;
  if Queue.is_empty sh.sh_rx then begin
    sh.sh_wake_pending <- false;
    ignore (Mach.Sched.block "netisr-idle" : Mach.Ktypes.kern_return)
  end
  else Mach.Sched.yield ();  (* batch boundary: let peers run *)
  netisr_loop t sh ()

let spawn_netisr t task (sh : shard) =
  let name =
    if sh.sh_generation = 0 then Printf.sprintf "netisr%d" sh.sh_id
    else Printf.sprintf "netisr%d.%d" sh.sh_id sh.sh_generation
  in
  let th =
    Mach.Kernel.thread_spawn t.kernel task ~name
      ~affinity:(sh.sh_id mod Machine.ncpus (machine t))
      ~bound:true (netisr_loop t sh)
  in
  (* protocol threads outrank user threads on their CPU: a woken
     netisr drains its ring before the co-located producer gets
     to inject the next burst on top of a still-full ring *)
  th.Mach.Ktypes.priority <- 10;
  sh.sh_thread <- Some th

let start_netisr t =
  if nshards t > 1 then begin
    let task = Mach.Kernel.task_create t.kernel ~name:"netisr" () in
    t.netisr_task <- Some task;
    Array.iter (spawn_netisr t task) t.shards
  end

(* --- socket setup (syscall side) ----------------------------------------- *)

let alloc_sock t (home : shard) ~port kind =
  if home.sh_dead then Error (Printf.sprintf "shard %d down" home.sh_id)
  else if Hashtbl.mem t.port_owner port then
    Error (Printf.sprintf "port %d in use" port)
  else begin
    let s =
      {
        s_uid = t.next_uid;
        s_port = port;
        s_home = home.sh_id;
        s_kind = kind;
        rx = Queue.create ();
        s_peer = -1;
        s_established = false;
        s_open = true;
        s_born = Machine.global_now (machine t);
        s_waiter = None;
      }
    in
    t.next_uid <- t.next_uid + 1;
    xshard_post t ~from:(cpu_shard t) ~target:home.sh_id
      (Net_bind { nb_port = port; nb_shard = home.sh_id; nb_sock = s });
    Hashtbl.replace home.sh_sockets port s;
    (match kind with S_tcp conn -> conn_incr home conn | _ -> ());
    chk t (fun c sp ->
        Check.net_socket_home c ~space:sp ~sock:s.s_uid ~shard:home.sh_id);
    Ok s
  end

let udp_socket t ~port = alloc_sock t t.shards.(shard_of_port t port) ~port S_udp

let udp_send t s ~dst_port ~bytes =
  transmit t
    { p_proto = Udp; p_src = s.s_port; p_dst = dst_port; p_bytes = bytes;
      p_conn = 0; p_zc = bytes >= zc_threshold; p_chunks = 1; p_sent = 0 }

(* Vectored (scatter/gather) datagram: the chunks go out as one packet
   whose header is walked once; each chunk costs its own map-entry edit
   on the zero-copy path.  Small gathers fall back to the copying walk
   over the summed bytes. *)
let udp_send_vec t s ~dst_port ~iov =
  let bytes = List.fold_left ( + ) 0 iov in
  let chunks = max 1 (List.length iov) in
  transmit t
    { p_proto = Udp; p_src = s.s_port; p_dst = dst_port; p_bytes = bytes;
      p_conn = 0; p_zc = bytes >= zc_threshold; p_chunks = chunks; p_sent = 0 }

let rec udp_recv t s =
  match Queue.take_opt s.rx with
  | Some hit -> hit
  | None ->
      wait_on t s "udp-recv";
      udp_recv t s

let try_recv (_t : t) s = Queue.take_opt s.rx
let pending s = Queue.length s.rx

(* Ephemeral local ports from 32768, O(1) under churn: each shard owns
   the residue class  { base + shard + k*nshards }  plus a free list of
   its closed ports, so allocation is a list pop or a hint bump — never
   a scan over the socket table. *)
let fresh_port t (sh : shard) =
  match sh.sh_free_ports with
  | p :: rest ->
      sh.sh_free_ports <- rest;
      p
  | [] ->
      let stride = nshards t in
      let rec next () =
        let p = sh.sh_port_hint in
        sh.sh_port_hint <- p + stride;
        (* skip ports a client bound explicitly in our residue class *)
        if Hashtbl.mem t.port_owner p then next () else p
      in
      next ()

let tcp_listen t ~port =
  alloc_sock t t.shards.(shard_of_port t port) ~port (S_listen (Queue.create ()))

(* Connection ids, strided per shard so allocation is contention-free. *)
let fresh_conn t =
  let sh = cpu_shard t in
  let conn = sh.sh_next_conn in
  sh.sh_next_conn <- conn + nshards t;
  conn

(* Accept steering: the pending entry was queued on the *listener's*
   shard; the child socket homes on the hash of its connection id, which
   is usually a different shard — the install travels as a registry
   message (the cross-shard accept protocol). *)
let accept_child t (listener : socket) ~peer ~conn =
  let home = t.shards.(shard_of_conn t conn) in
  if home.sh_id <> listener.s_home then begin
    t.xshard_accepts <- t.xshard_accepts + 1;
    xshard_post t ~from:t.shards.(listener.s_home) ~target:home.sh_id
      (Net_accept_install { na_conn = conn; na_port = 0 })
  end;
  let port = fresh_port t home in
  match alloc_sock t home ~port (S_tcp conn) with
  | Error e -> failwith e
  | Ok child ->
      child.s_peer <- peer;
      (* half-open until the peer's ACK lands; the reaper may claim it *)
      Hashtbl.replace home.sh_embryonic conn child;
      transmit t
        { p_proto = Tcp_synack; p_src = port; p_dst = peer; p_bytes = 0;
          p_conn = conn; p_zc = false; p_chunks = 1; p_sent = 0 };
      child

let rec tcp_accept t s =
  match s.s_kind with
  | S_listen pending -> (
      match Queue.take_opt pending with
      | Some (peer, conn) -> accept_child t s ~peer ~conn
      | None ->
          wait_on t s "tcp-accept";
          tcp_accept t s)
  | S_udp | S_tcp _ -> invalid_arg "tcp_accept: not a listening socket"

(* Non-blocking connect initiation: sends the SYN and returns; callers
   poll {!established} (the storm workload uses this so flooded SYNs
   never wedge a driver thread). *)
let tcp_connect_start t ~dst_port =
  let conn = fresh_conn t in
  let home = t.shards.(shard_of_conn t conn) in
  let port = fresh_port t home in
  match alloc_sock t home ~port (S_tcp conn) with
  | Error e -> Error e
  | Ok s ->
      transmit t
        { p_proto = Tcp_syn; p_src = port; p_dst = dst_port; p_bytes = 0;
          p_conn = conn; p_zc = false; p_chunks = 1; p_sent = 0 };
      Ok s

let tcp_connect t ~dst_port =
  match tcp_connect_start t ~dst_port with
  | Error e -> Error e
  | Ok s ->
      while not s.s_established do
        wait_on t s "tcp-connect"
      done;
      Ok s

let tcp_send_gather t s ~iov name =
  match s.s_kind with
  | S_tcp conn ->
      (* the established peer is recorded on the socket (no table scan);
         send only while both endpoints of the connection are live, as
         the original peer-lookup behaved *)
      let home = t.shards.(s.s_home) in
      if s.s_peer >= 0 && conn_live home conn >= 2 then begin
        let bytes = List.fold_left ( + ) 0 iov in
        transmit t
          { p_proto = Tcp_data; p_src = s.s_port; p_dst = s.s_peer;
            p_bytes = bytes; p_conn = conn;
            p_zc = bytes >= zc_threshold;
            p_chunks = max 1 (List.length iov); p_sent = 0 }
      end
  | S_udp | S_listen _ -> invalid_arg (name ^ ": not a TCP socket")

let tcp_send t s ~bytes = tcp_send_gather t s ~iov:[ bytes ] "tcp_send"
let tcp_send_vec t s ~iov = tcp_send_gather t s ~iov "tcp_send_vec"

let rec tcp_recv t s =
  match Queue.take_opt s.rx with
  | Some (_, bytes) -> bytes
  | None ->
      wait_on t s "tcp-recv";
      tcp_recv t s

let established s = s.s_established
let local_port s = s.s_port

let close t s =
  if s.s_open then begin
    s.s_open <- false;
    let home = t.shards.(s.s_home) in
    Hashtbl.remove home.sh_sockets s.s_port;
    xshard_post t ~from:(cpu_shard t) ~target:home.sh_id
      (Net_unbind { nu_port = s.s_port });
    (match s.s_kind with
    | S_tcp conn ->
        conn_decr home conn;
        Hashtbl.remove home.sh_embryonic conn
    | S_udp | S_listen _ -> ());
    (* ephemeral ports go back to their shard's free list: O(1) reuse *)
    if s.s_port >= ephemeral_base then
      home.sh_free_ports <- s.s_port :: home.sh_free_ports
  end

(* Reap half-open (embryonic) connections older than [older_than] cycles
   — the slowloris defence.  Walks only the embryonic tables, which hold
   exactly the connections still mid-handshake. *)
let reap_half_open t ~older_than =
  let now = Machine.global_now (machine t) in
  let n = ref 0 in
  Array.iter
    (fun sh ->
      let stale =
        Hashtbl.fold
          (fun _conn s acc ->
            if (not s.s_established) && now - s.s_born > older_than then
              s :: acc
            else acc)
          sh.sh_embryonic []
      in
      List.iter
        (fun s ->
          close t s;
          incr n)
        stale)
    t.shards;
  t.reaped <- t.reaped + !n;
  !n

(* --- shard micro-reboot --------------------------------------------------- *)

(* Kill one protocol shard: terminate its netisr thread, drop whatever
   the rx ring held (counted — closed-loop clients re-drive it), and
   wipe every table.  The socket records themselves are NOT freed: the
   endpoints hold them, and the cross-shard registry kept its own copy
   with each bind — which is what [reincarnate_shard] rebuilds from.
   Data already delivered into socket rx queues (acked data) is on the
   endpoint records and survives untouched. *)
let kill_shard t ~shard =
  let sh = t.shards.(shard) in
  if sh.sh_dead then invalid_arg "Netserver.kill_shard: shard already dead";
  chk t (fun c sp -> Check.reinc_shard_killed c ~space:sp ~shard);
  (* mark what a faithful rebirth must restore *)
  Hashtbl.iter
    (fun _port (s : socket) ->
      chk t (fun c sp -> Check.reinc_expect c ~space:sp ~shard ~sock:s.s_uid))
    sh.sh_sockets;
  (match sh.sh_thread with
  | Some th ->
      Mach.Sched.terminate (sys t) th;
      sh.sh_thread <- None
  | None -> ());
  sh.sh_reboot_drops <- sh.sh_reboot_drops + Queue.length sh.sh_rx;
  Queue.clear sh.sh_rx;
  Hashtbl.reset sh.sh_sockets;
  Hashtbl.reset sh.sh_conns;
  Hashtbl.reset sh.sh_embryonic;
  sh.sh_free_ports <- [];
  sh.sh_wake_pending <- false;
  sh.sh_dead <- true

(* Reincarnate a killed shard.  The socket table is rebuilt from the
   registry's bind records (each reinstall charged one cross-shard
   message, as the real protocol would cost); connection refcounts and
   the embryonic table follow from the sockets themselves — both ends of
   a connection home here, and a not-yet-established TCP socket is by
   definition still mid-handshake, so the reaper keeps working across a
   reboot.  The ephemeral free list is reconstructed from the registry:
   every port of our residue class below the high-water mark that nobody
   holds is free.  Registry entries claiming this shard with no socket
   behind them are leaked rights — reported, then reclaimed. *)
let reincarnate_shard t ~shard =
  let sh = t.shards.(shard) in
  if not sh.sh_dead then
    invalid_arg "Netserver.reincarnate_shard: shard is not dead";
  let stride = nshards t in
  let mine p = p >= ephemeral_base && (p - ephemeral_base) mod stride = shard in
  (* rebuild the socket/conn/embryonic tables from the registry copy *)
  Hashtbl.iter
    (fun port (s : socket) ->
      if s.s_home = shard && s.s_open then begin
        t.registry_msgs <- t.registry_msgs + 1;
        Machine.execute (machine t) [ Machine.Footprint.Stall xshard_cost ];
        Hashtbl.replace sh.sh_sockets port s;
        (match s.s_kind with
        | S_tcp conn ->
            conn_incr sh conn;
            if not s.s_established then Hashtbl.replace sh.sh_embryonic conn s
        | S_udp | S_listen _ -> ());
        chk t (fun c sp ->
            Check.reinc_restored c ~space:sp ~shard ~sock:s.s_uid)
      end)
    t.port_sock;
  (* ephemeral allocator: high-water hint from the registry, free list =
     unheld residue-class ports below it *)
  let hint =
    Hashtbl.fold
      (fun p _ acc -> if mine p then max acc (p + stride) else acc)
      t.port_owner
      (ephemeral_base + shard)
  in
  sh.sh_port_hint <- hint;
  let free = ref [] in
  let p = ref (ephemeral_base + shard) in
  while !p < hint do
    if not (Hashtbl.mem t.port_owner !p) then free := !p :: !free;
    p := !p + stride
  done;
  sh.sh_free_ports <- !free;
  (* rights residue: registry claims with no socket rebuilt behind them *)
  Hashtbl.iter
    (fun port owner ->
      if owner = shard && not (Hashtbl.mem sh.sh_sockets port) then
        chk t (fun c sp ->
            Check.reinc_rights_residue c ~space:sp ~shard ~port
              ~pname:(Printf.sprintf "net:%d" port)))
    t.port_owner;
  chk t (fun c sp -> Check.reinc_shard_reborn c ~space:sp ~shard);
  sh.sh_generation <- sh.sh_generation + 1;
  sh.sh_dead <- false;
  t.reincarnations <- t.reincarnations + 1;
  (match t.netisr_task with
  | Some task when nshards t > 1 -> spawn_netisr t task sh
  | _ -> ());
  (* anything that arrived for rebuilt sockets while we were down is
     gone; wake blocked receivers so closed-loop clients re-drive *)
  Hashtbl.iter (fun _ s -> wake_sock t s) sh.sh_sockets

let shard_dead t ~shard = t.shards.(shard).sh_dead
let shard_generation t ~shard = t.shards.(shard).sh_generation
let reboot_drops t =
  Array.fold_left (fun acc sh -> acc + sh.sh_reboot_drops) 0 t.shards
let shard_reincarnations t = t.reincarnations

(* --- raw wire injection (attack/storm harness) --------------------------- *)

(* Inject a datagram as if a remote client sent it: the packet enters
   at the wire edge — no transmit-side walk is charged anywhere, since
   an external sender's stack runs on the client's hardware, not this
   machine — and delivery steers by the normal hash.  [src_port] is
   free-form, so one generator can impersonate thousands of clients. *)
let inject_udp t ~src_port ~dst_port ~bytes =
  wire_send t
    { p_proto = Udp; p_src = src_port; p_dst = dst_port; p_bytes = bytes;
      p_conn = 0; p_zc = bytes >= zc_threshold; p_chunks = 1; p_sent = 0 }

(* Inject a bare SYN that no local socket backs: the listener will
   accept and SYNACK into the void — the half-open load of a SYN storm
   or a slowloris client.  Caller owns conn-id uniqueness (use ids far
   above the strided allocator, e.g. >= 1_000_000). *)
let inject_syn t ~src_port ~dst_port ~conn =
  wire_send t
    { p_proto = Tcp_syn; p_src = src_port; p_dst = dst_port; p_bytes = 0;
      p_conn = conn; p_zc = false; p_chunks = 1; p_sent = 0 }

(* --- construction -------------------------------------------------------- *)

let create ?shards ?(backlog = default_backlog) kernel ~style =
  let objrt = Finegrain.create kernel ~style ~name:"net" in
  (* the framework hierarchy: deep for fine-grained reuse *)
  let base = Finegrain.define_class objrt ~name:"TObject" () in
  let stream = Finegrain.define_class objrt ~name:"TStream" ~super:base () in
  let proto_k =
    Finegrain.define_class objrt ~name:"TProtocolLayer" ~super:stream ()
  in
  let eth = Finegrain.define_class objrt ~name:"TEthernet" ~super:proto_k () in
  let ip = Finegrain.define_class objrt ~name:"TInternet" ~super:proto_k () in
  let transport =
    Finegrain.define_class objrt ~name:"TTransport" ~super:proto_k ()
  in
  let sock_k = Finegrain.define_class objrt ~name:"TSocket" ~super:stream () in
  let classes = [| eth; ip; transport; sock_k |] in
  let n =
    match shards with
    | Some n ->
        if n < 1 then invalid_arg "Netserver.create: shards must be >= 1";
        n
    | None -> Machine.ncpus kernel.Mach.Kernel.machine
  in
  let shard i =
    {
      sh_id = i;
      sh_sockets = Hashtbl.create 32;
      sh_conns = Hashtbl.create 32;
      sh_embryonic = Hashtbl.create 8;
      sh_layers = Array.map (Finegrain.new_object objrt) classes;
      sh_rx = Queue.create ();
      sh_wake_pending = false;
      sh_thread = None;
      sh_next_conn = i + 1;
      sh_port_hint = ephemeral_base + i;
      sh_free_ports = [];
      sh_delivered = 0;
      sh_batches = 0;
      sh_dead = false;
      sh_generation = 0;
      sh_reboot_drops = 0;
    }
  in
  let t =
    {
      kernel;
      objrt;
      shards = Array.init n shard;
      port_owner = Hashtbl.create 64;
      port_sock = Hashtbl.create 64;
      backlog;
      next_uid = 1;
      packets = 0;
      checksummed = 0;
      zc_sends = 0;
      syn_drops = 0;
      wire_drops = 0;
      reaped = 0;
      registry_msgs = 0;
      xshard_accepts = 0;
      probe = None;
      netisr_task = None;
      reincarnations = 0;
    }
  in
  start_netisr t;
  t
