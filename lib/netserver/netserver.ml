type proto = Udp | Tcp_syn | Tcp_synack | Tcp_ack | Tcp_data

type packet = {
  p_proto : proto;
  p_src : int;
  p_dst : int;
  p_bytes : int;
  p_conn : int;  (* TCP connection id *)
  p_zc : bool;  (* payload travels by page remap, not through the layers *)
  p_chunks : int;  (* scatter/gather descriptors (1 for a plain send) *)
}

type sock_kind =
  | S_udp
  | S_listen of (int * int) Queue.t  (* pending (peer port, conn id) *)
  | S_tcp of int  (* connection id *)

type socket = {
  s_port : int;
  mutable s_kind : sock_kind;
  rx : (int * int) Queue.t;  (* (src port, bytes) *)
  mutable s_established : bool;
  mutable s_open : bool;
  mutable s_waiter : Mach.Ktypes.thread option;
}

type t = {
  kernel : Mach.Kernel.t;
  objrt : Finegrain.t;
  layers : Finegrain.obj array;  (* ethernet, ip, transport, socket *)
  sockets : (int, socket) Hashtbl.t;
  mutable next_conn : int;
  mutable packets : int;
  mutable checksummed : int;
  mutable zc_sends : int;
}

let wire_latency = 2_000  (* cycles on the simulated segment *)
let header_bytes = 54  (* eth 14 + ip 20 + tcp 20 *)

let create kernel ~style =
  let objrt = Finegrain.create kernel ~style ~name:"net" in
  (* the framework hierarchy: deep for fine-grained reuse *)
  let base = Finegrain.define_class objrt ~name:"TObject" () in
  let stream = Finegrain.define_class objrt ~name:"TStream" ~super:base () in
  let proto_k =
    Finegrain.define_class objrt ~name:"TProtocolLayer" ~super:stream ()
  in
  let eth = Finegrain.define_class objrt ~name:"TEthernet" ~super:proto_k () in
  let ip = Finegrain.define_class objrt ~name:"TInternet" ~super:proto_k () in
  let transport =
    Finegrain.define_class objrt ~name:"TTransport" ~super:proto_k ()
  in
  let sock_k = Finegrain.define_class objrt ~name:"TSocket" ~super:stream () in
  {
    kernel;
    objrt;
    layers =
      [|
        Finegrain.new_object objrt eth;
        Finegrain.new_object objrt ip;
        Finegrain.new_object objrt transport;
        Finegrain.new_object objrt sock_k;
      |];
    sockets = Hashtbl.create 32;
    next_conn = 1;
    packets = 0;
    checksummed = 0;
    zc_sends = 0;
  }

let objects t = t.objrt
let packets_processed t = t.packets
let checksum_bytes t = t.checksummed
let zero_copy_sends t = t.zc_sends

(* walk the stack: one framework invocation per layer, work scaling with
   the bytes each layer handles; the IP layer also checksums.  A
   zero-copy packet's payload never passes through the layers — each one
   handles the header plus a descriptor of remapped pages, so only the
   header is touched and checksummed *)
let walk_stack t ~bytes ~zc =
  t.packets <- t.packets + 1;
  let touched = if zc then header_bytes else bytes + header_bytes in
  t.checksummed <- t.checksummed + touched;
  Array.iter
    (fun layer ->
      Finegrain.invoke t.objrt layer ~work_units:(2 + (touched / 64)))
    t.layers

let sys t = t.kernel.Mach.Kernel.sys

(* Payloads of at least a page go out by remap: the layers see a
   descriptor, the pages change hands at the map level.  Below that the
   map edit and shootdown cost more than just copying. *)
let zc_threshold = Mach.Ktypes.page_size

(* The pages the zero-copy path cycles through, for shootdown
   addressing — distinct from any kernel buffer so the invalidations
   don't alias the kbuf working set. *)
let zc_region t =
  let layout = t.kernel.Mach.Kernel.machine.Machine.layout in
  match Machine.Layout.find layout "net.zc-pages" with
  | Some r -> r
  | None ->
      Machine.Layout.alloc layout ~name:"net.zc-pages"
        ~kind:Machine.Layout.Data
        ~size:(64 * Mach.Ktypes.page_size)

(* What a zero-copy transfer actually costs at each end of the wire: a
   map-entry edit per scatter/gather chunk plus one TLB shootdown over
   the remapped pages — never a per-byte term. *)
let charge_remap t ~chunks ~bytes =
  let ktext = (sys t).Mach.Sched.ktext in
  for _ = 1 to chunks do
    Mach.Ktext.exec1 ktext (Mach.Ktext.vm_remap_entry ktext)
  done;
  let region = zc_region t in
  Machine.Cpu.tlb_shootdown t.kernel.Mach.Kernel.machine.Machine.cpu
    ~addr:region.Machine.Layout.base
    ~pages:(Mach.Ktypes.pages_of_bytes bytes)

let wake_sock t s =
  match s.s_waiter with
  | Some th ->
      s.s_waiter <- None;
      Mach.Sched.wake (sys t) th
  | None -> ()

let wait_on t s reason =
  s.s_waiter <- Some (Mach.Sched.self ());
  ignore (Mach.Sched.block reason : Mach.Ktypes.kern_return);
  ignore t

let rec deliver t (pkt : packet) =
  walk_stack t ~bytes:pkt.p_bytes ~zc:pkt.p_zc;
  if pkt.p_zc then charge_remap t ~chunks:pkt.p_chunks ~bytes:pkt.p_bytes;
  match Hashtbl.find_opt t.sockets pkt.p_dst with
  | None -> ()  (* dropped: no listener *)
  | Some s -> (
      match (pkt.p_proto, s.s_kind) with
      | Udp, S_udp ->
          Queue.add (pkt.p_src, pkt.p_bytes) s.rx;
          wake_sock t s
      | Tcp_syn, S_listen pending ->
          Queue.add (pkt.p_src, pkt.p_conn) pending;
          wake_sock t s
      | Tcp_synack, S_tcp conn when conn = pkt.p_conn ->
          s.s_established <- true;
          transmit t
            { p_proto = Tcp_ack; p_src = s.s_port; p_dst = pkt.p_src;
              p_bytes = 0; p_conn = conn; p_zc = false; p_chunks = 1 };
          wake_sock t s
      | Tcp_ack, S_tcp conn when conn = pkt.p_conn ->
          s.s_established <- true;
          wake_sock t s
      | Tcp_data, S_tcp conn when conn = pkt.p_conn ->
          Queue.add (pkt.p_src, pkt.p_bytes) s.rx;
          wake_sock t s
      | (Udp | Tcp_syn | Tcp_synack | Tcp_ack | Tcp_data), _ -> ())

and transmit t pkt =
  walk_stack t ~bytes:pkt.p_bytes ~zc:pkt.p_zc;
  if pkt.p_zc then begin
    t.zc_sends <- t.zc_sends + 1;
    charge_remap t ~chunks:pkt.p_chunks ~bytes:pkt.p_bytes
  end;
  let m = t.kernel.Mach.Kernel.machine in
  Machine.Event_queue.schedule m.Machine.events
    ~at:(Machine.now m + wire_latency)
    (fun () -> deliver t pkt)

let alloc_sock t ~port kind =
  if Hashtbl.mem t.sockets port then
    Error (Printf.sprintf "port %d in use" port)
  else begin
    let s =
      {
        s_port = port;
        s_kind = kind;
        rx = Queue.create ();
        s_established = false;
        s_open = true;
        s_waiter = None;
      }
    in
    Hashtbl.replace t.sockets port s;
    Ok s
  end

let udp_socket t ~port = alloc_sock t ~port S_udp

let udp_send t s ~dst_port ~bytes =
  transmit t
    { p_proto = Udp; p_src = s.s_port; p_dst = dst_port; p_bytes = bytes;
      p_conn = 0; p_zc = bytes >= zc_threshold; p_chunks = 1 }

(* Vectored (scatter/gather) datagram: the chunks go out as one packet
   whose header is walked once; each chunk costs its own map-entry edit
   on the zero-copy path.  Small gathers fall back to the copying walk
   over the summed bytes. *)
let udp_send_vec t s ~dst_port ~iov =
  let bytes = List.fold_left ( + ) 0 iov in
  let chunks = max 1 (List.length iov) in
  transmit t
    { p_proto = Udp; p_src = s.s_port; p_dst = dst_port; p_bytes = bytes;
      p_conn = 0; p_zc = bytes >= zc_threshold; p_chunks = chunks }

let rec udp_recv t s =
  match Queue.take_opt s.rx with
  | Some hit -> hit
  | None ->
      wait_on t s "udp-recv";
      udp_recv t s

let pending s = Queue.length s.rx

(* ephemeral local ports from 32768 *)
let fresh_port t =
  let rec scan p = if Hashtbl.mem t.sockets p then scan (p + 1) else p in
  scan 32768

let tcp_listen t ~port = alloc_sock t ~port (S_listen (Queue.create ()))

let rec tcp_accept t s =
  match s.s_kind with
  | S_listen pending -> (
      match Queue.take_opt pending with
      | Some (peer, conn) ->
          let port = fresh_port t in
          let child =
            match alloc_sock t ~port (S_tcp conn) with
            | Ok c -> c
            | Error e -> failwith e
          in
          transmit t
            { p_proto = Tcp_synack; p_src = port; p_dst = peer;
              p_bytes = 0; p_conn = conn; p_zc = false; p_chunks = 1 };
          child
      | None ->
          wait_on t s "tcp-accept";
          tcp_accept t s)
  | S_udp | S_tcp _ -> invalid_arg "tcp_accept: not a listening socket"

let tcp_connect t ~dst_port =
  let port = fresh_port t in
  let conn = t.next_conn in
  t.next_conn <- t.next_conn + 1;
  match alloc_sock t ~port (S_tcp conn) with
  | Error e -> Error e
  | Ok s ->
      transmit t
        { p_proto = Tcp_syn; p_src = port; p_dst = dst_port; p_bytes = 0;
          p_conn = conn; p_zc = false; p_chunks = 1 };
      while not s.s_established do
        wait_on t s "tcp-connect"
      done;
      Ok s

let tcp_send_gather t s ~iov name =
  match s.s_kind with
  | S_tcp conn -> (
      (* we do not model the peer port table per connection; data is
         addressed by the established peer recorded in the rx path, so
         send via broadcast-to-conn: find the other socket of the conn *)
      let peer = ref None in
      Hashtbl.iter
        (fun _ other ->
          match other.s_kind with
          | S_tcp c when c = conn && other != s -> peer := Some other.s_port
          | _ -> ())
        t.sockets;
      match !peer with
      | Some dst ->
          let bytes = List.fold_left ( + ) 0 iov in
          transmit t
            { p_proto = Tcp_data; p_src = s.s_port; p_dst = dst;
              p_bytes = bytes; p_conn = conn;
              p_zc = bytes >= zc_threshold;
              p_chunks = max 1 (List.length iov) }
      | None -> ())
  | S_udp | S_listen _ -> invalid_arg (name ^ ": not a TCP socket")

let tcp_send t s ~bytes = tcp_send_gather t s ~iov:[ bytes ] "tcp_send"
let tcp_send_vec t s ~iov = tcp_send_gather t s ~iov "tcp_send_vec"

let rec tcp_recv t s =
  match Queue.take_opt s.rx with
  | Some (_, bytes) -> bytes
  | None ->
      wait_on t s "tcp-recv";
      tcp_recv t s

let established s = s.s_established

let close t s =
  if s.s_open then begin
    s.s_open <- false;
    Hashtbl.remove t.sockets s.s_port
  end
