(** The communications and networking shared service.

    Modelled on Taligent's networking frameworks: the protocol stack
    (ethernet / IP / UDP / TCP) is written against the {!Finegrain}
    object runtime — every layer is an object, every packet walks the
    layer objects' methods.  Built with [style:Fine_grained] it behaves
    like the system the paper shipped; with [style:Coarse] it is the
    MK++-disciplined comparator (experiment E6).

    Internally the server is sharded after DragonFly's netisr model:
    packets hash by destination port (binds, SYNs) or connection id
    (established traffic) to a fixed per-CPU protocol thread, so each
    socket's state is touched by exactly one shard — lock-free by
    construction, and checked at runtime by Machcheck's shard-crossing
    assertion.  With one shard (any uniprocessor boot) the machinery is
    inert and the server is cycle-identical to the original single-loop
    implementation.

    The network itself is a loopback wire with fixed latency on the
    machine's event queue; endpoints are ports on the local stack. *)

type t
type socket

val create :
  ?shards:int -> ?backlog:int -> Mach.Kernel.t -> style:Finegrain.style -> t
(** [shards] defaults to the machine's CPU count; with more than one
    shard a netisr thread is spawned per shard, affinity-bound to CPU
    [shard mod ncpus].  [backlog] (default 64) bounds each listener's
    pending-SYN queue: SYNs beyond it are refused ({!syn_drops}). *)

val objects : t -> Finegrain.t
(** The underlying object runtime (for footprint/dispatch statistics). *)

val packets_processed : t -> int
val checksum_bytes : t -> int

val zero_copy_sends : t -> int
(** Transmits whose payload went out by page remap rather than through
    the layers.  Payloads of at least a page (4 KiB) take this path
    automatically: each layer handles only the 54-byte header plus a
    descriptor, and the transfer is charged a map-entry edit per
    scatter/gather chunk and one TLB shootdown per side — never per
    byte. *)

(** {1 UDP} *)

val udp_socket : t -> port:int -> (socket, string) result
(** [Error] when the port is taken. *)

val udp_send : t -> socket -> dst_port:int -> bytes:int -> unit
(** Transmit a datagram to a local port over the simulated wire (bulk
    payloads go zero-copy — see {!zero_copy_sends}). *)

val udp_send_vec : t -> socket -> dst_port:int -> iov:int list -> unit
(** Scatter/gather datagram: the chunks leave as one packet whose header
    is walked once; on the zero-copy path each chunk costs its own
    map-entry edit. *)

val udp_recv : t -> socket -> int * int
(** Blocks for the next datagram; returns [(source port, bytes)]. *)

val try_recv : t -> socket -> (int * int) option
(** Non-blocking {!udp_recv} / {!tcp_recv}: [None] when the socket's
    receive queue is empty. *)

val pending : socket -> int

(** {1 TCP (minimal: handshake, in-order data)} *)

val tcp_listen : t -> port:int -> (socket, string) result
val tcp_accept : t -> socket -> socket
(** Blocks for an incoming connection.  The child socket homes on the
    hash of its connection id — often a different shard than the
    listener's; the install travels over the cross-shard registry
    protocol ({!cross_shard_accepts}). *)

val tcp_connect : t -> dst_port:int -> (socket, string) result
(** Blocks through the three-way handshake. *)

val tcp_connect_start : t -> dst_port:int -> (socket, string) result
(** Non-blocking connect: sends the SYN and returns immediately; poll
    {!established}.  Storm drivers use this so a flooded (dropped) SYN
    never wedges the calling thread. *)

val tcp_send : t -> socket -> bytes:int -> unit
val tcp_send_vec : t -> socket -> iov:int list -> unit
(** Gathered segment; same zero-copy selection as {!udp_send_vec}. *)

val tcp_recv : t -> socket -> int
(** Blocks for the next in-order segment; returns its size. *)

val established : socket -> bool

val local_port : socket -> int
(** The socket's bound local port (ephemeral ones are reused after
    {!close} via the per-shard free lists). *)

val close : t -> socket -> unit

(** {1 Storm / attack harness} *)

val inject_udp : t -> src_port:int -> dst_port:int -> bytes:int -> unit
(** Inject a datagram as if a remote client sent it: the packet enters
    at the wire edge — no transmit-side stack walk is charged, because
    an external sender's stack runs on the client's hardware — and
    delivery steers by the normal hash.  [src_port] is free-form, so
    one generator can impersonate thousands of clients. *)

val inject_syn : t -> src_port:int -> dst_port:int -> conn:int -> unit
(** Inject a bare SYN no local socket backs: the accepting listener will
    SYNACK into the void and the child sits half-open — the load of a
    SYN storm or a slowloris client.  The caller owns conn-id
    uniqueness; use ids far above the strided allocator (>= 1_000_000). *)

val reap_half_open : t -> older_than:int -> int
(** Close half-open (embryonic) connections older than [older_than]
    cycles — the slowloris defence.  Returns the number reaped. *)

(** {1 Shard micro-reboot}

    A single protocol shard can be killed and reincarnated while the
    rest of the server keeps serving.  The kill terminates the shard's
    netisr thread and wipes its tables; the rebirth rebuilds them from
    the cross-shard port registry, which kept a copy of every bound
    socket record with its bind message.  Acked data is never lost —
    socket rx queues live on the endpoint records, not in shard tables —
    and only in-flight packets (the rx ring plus wire arrivals during
    the outage) are dropped and counted; closed-loop clients re-drive
    them through their retry paths.  Untouched shards are unaffected,
    cycle for cycle.  Machcheck's reincarnation checker audits the
    round trip: every socket marked at kill time must be restored, no
    stale registry entries, no leaked port rights. *)

val kill_shard : t -> shard:int -> unit
(** Terminate [shard]'s netisr thread and wipe its socket/conn/embryonic
    tables, free lists and rx ring (ring contents counted in
    {!reboot_drops}).  While dead, packets steered to the shard are
    dropped and counted, and socket allocation on it fails fast.
    @raise Invalid_argument if the shard is already dead. *)

val reincarnate_shard : t -> shard:int -> unit
(** Rebuild the shard from the registry: sockets reinstalled (one
    cross-shard message charged each), connection refcounts and the
    embryonic table rederived from the sockets themselves (so the
    half-open reaper keeps working), the ephemeral free list and
    high-water hint reconstructed from the registry's residue-class
    holdings, leaked registry claims reported as rights residue, and a
    fresh generation-named netisr thread spawned.  Blocked receivers are
    woken so closed-loop clients re-drive anything lost in flight.
    @raise Invalid_argument if the shard is not dead. *)

val shard_dead : t -> shard:int -> bool
val shard_generation : t -> shard:int -> int
(** Micro-reboots this shard has completed. *)

val reboot_drops : t -> int
(** In-flight packets lost to shard reboots (rx-ring contents at kill
    plus wire arrivals while dead) — never acked data. *)

val shard_reincarnations : t -> int
(** Total shard micro-reboots completed serverwide. *)

val half_open : t -> int
(** Connections currently mid-handshake (across all shards). *)

val set_delivery_probe : t -> (int -> int -> unit) -> unit
(** Call [f shard latency] for every packet processed, where [latency]
    is home-shard CPU cycles from rx-ring entry (wire exit) to socket
    delivery — the ring wait plus protocol processing the netserver
    owns, excluding simulated wire travel and cross-CPU clock drift.
    [shard] lets callers keep per-shard distributions. *)

val clear_delivery_probe : t -> unit

(** {1 Shard observability} *)

val shard_count : t -> int
val shard_delivered : t -> int array
(** Packets each shard processed — the occupancy-fairness numerator. *)

val shard_batches : t -> int array
(** Netisr drain activations per shard (delivered/batches = batching). *)

val shard_backlog : t -> int array
(** Current rx-ring occupancy per shard — what a NIC driver would read
    to apply ring-full backpressure.  All zeros when [shard_count] is 1
    (the single-loop path delivers synchronously, no ring). *)

val port_shard : t -> port:int -> int
(** Which shard the steering hash assigns [port]'s traffic to — the
    flow-to-netisr mapping a smart NIC or traffic generator would use
    for per-queue accounting. *)

val syn_drops : t -> int
(** SYNs refused because the listener's backlog was full. *)

val wire_drops : t -> int
(** Packets lost to injected wire faults ({!Mach.Fault}). *)

val reaped_half_open : t -> int
val registry_messages : t -> int
(** Cross-shard port-registry messages (bind/unbind/accept installs). *)

val cross_shard_accepts : t -> int
(** Accepted children whose home shard differs from the listener's. *)
