(** The communications and networking shared service.

    Modelled on Taligent's networking frameworks: the protocol stack
    (ethernet / IP / UDP / TCP) is written against the {!Finegrain}
    object runtime — every layer is an object, every packet walks the
    layer objects' methods.  Built with [style:Fine_grained] it behaves
    like the system the paper shipped; with [style:Coarse] it is the
    MK++-disciplined comparator (experiment E6).

    The network itself is a loopback wire with fixed latency on the
    machine's event queue; endpoints are ports on the local stack. *)

type t
type socket

val create : Mach.Kernel.t -> style:Finegrain.style -> t

val objects : t -> Finegrain.t
(** The underlying object runtime (for footprint/dispatch statistics). *)

val packets_processed : t -> int
val checksum_bytes : t -> int

val zero_copy_sends : t -> int
(** Transmits whose payload went out by page remap rather than through
    the layers.  Payloads of at least a page (4 KiB) take this path
    automatically: each layer handles only the 54-byte header plus a
    descriptor, and the transfer is charged a map-entry edit per
    scatter/gather chunk and one TLB shootdown per side — never per
    byte. *)

(** {1 UDP} *)

val udp_socket : t -> port:int -> (socket, string) result
(** [Error] when the port is taken. *)

val udp_send : t -> socket -> dst_port:int -> bytes:int -> unit
(** Transmit a datagram to a local port over the simulated wire (bulk
    payloads go zero-copy — see {!zero_copy_sends}). *)

val udp_send_vec : t -> socket -> dst_port:int -> iov:int list -> unit
(** Scatter/gather datagram: the chunks leave as one packet whose header
    is walked once; on the zero-copy path each chunk costs its own
    map-entry edit. *)

val udp_recv : t -> socket -> int * int
(** Blocks for the next datagram; returns [(source port, bytes)]. *)

val pending : socket -> int

(** {1 TCP (minimal: handshake, in-order data)} *)

val tcp_listen : t -> port:int -> (socket, string) result
val tcp_accept : t -> socket -> socket
(** Blocks for an incoming connection. *)

val tcp_connect : t -> dst_port:int -> (socket, string) result
(** Blocks through the three-way handshake. *)

val tcp_send : t -> socket -> bytes:int -> unit
val tcp_send_vec : t -> socket -> iov:int list -> unit
(** Gathered segment; same zero-copy selection as {!udp_send_vec}. *)

val tcp_recv : t -> socket -> int
(** Blocks for the next in-order segment; returns its size. *)

val established : socket -> bool
val close : t -> socket -> unit
