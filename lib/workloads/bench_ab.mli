(** A/B regression diff over two BENCH_*.json files.

    Compares the numeric leaves of two runs of the same experiment and
    judges each change by the metric's direction: throughput-like
    metrics regress when they fall, cost-like metrics (cycles, misses,
    stalls) regress when they rise.  Provenance (the ["run"] subtree)
    and host-clock fields are excluded, so only deterministic simulated
    metrics can gate a build. *)

type delta = {
  d_path : string;  (** dotted leaf path, arrays keyed by identity fields *)
  d_a : float;
  d_b : float;
  d_change : float;  (** (b - a) / a; infinite when a = 0 and b <> 0 *)
  d_direction : [ `Higher_better | `Lower_better | `Neutral ];
  d_regression : bool;  (** moved the wrong way by more than threshold *)
}

type verdict = {
  v_experiment : string;
  v_threshold : float;
  v_compared : int;  (** numeric leaves present in both files *)
  v_only_a : int;  (** leaves present in A but missing from B *)
  v_only_b : int;
  v_deltas : delta list;  (** changed leaves only, regressions first *)
  v_regressions : int;
}

val compare_json : a:string -> b:string -> threshold:float -> (verdict, string) result
(** [Error _] on malformed JSON or when the two documents disagree on
    ["experiment"] or ["schema_version"]. *)

val compare_files : a:string -> b:string -> threshold:float -> (verdict, string) result

val pp_verdict : Format.formatter -> verdict -> unit
