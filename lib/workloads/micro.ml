open Mach.Ktypes

type table2_row = {
  t2_label : string;
  t2_instructions : float;
  t2_cycles : float;
  t2_bus_cycles : float;
  t2_cpi : float;
}

let per_op (d : Machine.Perf.snapshot) iters =
  let f x = float_of_int x /. float_of_int iters in
  ( f d.Machine.Perf.instructions,
    f d.Machine.Perf.cycles,
    f d.Machine.Perf.bus_cycles,
    Machine.Perf.cpi d )

let snapshot m = Machine.Perf.snapshot (Machine.Cpu.perf m.Machine.cpu)

let table2 ?(iters = 2000) () =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let client = Mach.Kernel.task_create k ~name:"client" ~personality:"bench" () in
  let server = Mach.Kernel.task_create k ~name:"server" ~personality:"bench" () in
  let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  ignore
    (Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
         Mach.Rpc.serve sys port (fun _ -> simple_message ()))
      : thread);
  let trap = ref Machine.Perf.zero and rpc = ref Machine.Perf.zero in
  ignore
    (Mach.Kernel.thread_spawn k client ~name:"cl" (fun () ->
         for _ = 1 to 200 do
           ignore (Mach.Trap.thread_self sys)
         done;
         let t0 = snapshot m in
         for _ = 1 to iters do
           ignore (Mach.Trap.thread_self sys)
         done;
         trap := Machine.Perf.diff (snapshot m) t0;
         (* a null RPC's ack is the bare [P_unit]: acknowledge it
            explicitly so the round-trip being timed is the successful
            protocol, not whatever the server happened to answer *)
         let null_call () =
           match Mach.Rpc.call sys port (simple_message ~inline_bytes:32 ()) with
           | Ok { msg_payload = P_unit; _ } -> ()
           | Ok _ | Error _ -> ()
         in
         for _ = 1 to 200 do
           null_call ()
         done;
         let r0 = snapshot m in
         for _ = 1 to iters do
           null_call ()
         done;
         rpc := Machine.Perf.diff (snapshot m) r0;
         Mach.Port.destroy sys port)
      : thread);
  Mach.Kernel.run k;
  let ti, tc, tb, tcpi = per_op !trap iters in
  let ri, rc, rb, rcpi = per_op !rpc iters in
  ( { t2_label = "thread_self"; t2_instructions = ti; t2_cycles = tc;
      t2_bus_cycles = tb; t2_cpi = tcpi },
    { t2_label = "32-byte RPC"; t2_instructions = ri; t2_cycles = rc;
      t2_bus_cycles = rb; t2_cpi = rcpi } )

(* --- E3: the 2-10x message-passing improvement ----------------------------- *)

let ool_threshold = 1024

type sweep_point = {
  sw_bytes : int;
  sw_mach_ipc_cycles : float;
  sw_ibm_rpc_cycles : float;
  sw_improvement : float;
  sw_reply_hits : int;
  sw_reply_misses : int;
}

(* One measured system: the client owns a reusable buffer which it
   refills (write-touches) before every call — the realistic pattern
   under which Mach's virtual copy pays its deferred costs — and the
   server consumes the data in place. *)
let measure_system ~iters ~bytes ~serve ~call =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let client = Mach.Kernel.task_create k ~name:"client" () in
  let server = Mach.Kernel.task_create k ~name:"server" () in
  let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
  ignore
    (Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
         serve sys server port)
      : thread);
  let cycles = ref 0. in
  let hits = ref 0 and misses = ref 0 in
  ignore
    (Mach.Kernel.thread_spawn k client ~name:"cl" (fun () ->
         let buffer =
           if bytes > ool_threshold then Mach.Vm.allocate sys client ~bytes ()
           else 0
         in
         let message () =
           if bytes <= ool_threshold then simple_message ~inline_bytes:bytes ()
           else begin
             (* refill the buffer for this call *)
             Mach.Vm.touch sys client ~addr:buffer ~write:true ~bytes ();
             simple_message ~inline_bytes:64 ~ool:[ (buffer, bytes) ] ()
           end
         in
         for _ = 1 to max 20 (iters / 10) do
           call sys port (message ())
         done;
         let c0 = Machine.now m in
         for _ = 1 to iters do
           call sys port (message ())
         done;
         cycles := float_of_int (Machine.now m - c0) /. float_of_int iters;
         hits := Mach.Ipc.reply_cache_hits sys;
         misses := Mach.Ipc.reply_cache_misses sys;
         Mach.Port.destroy sys port)
      : thread);
  Mach.Kernel.run k;
  (!cycles, !hits, !misses)

let sweep_one ~iters ~bytes =
  (* Mach 3.0 mach_msg with reply ports and virtual copy *)
  let mach_cycles, reply_hits, reply_misses =
    measure_system ~iters ~bytes
      ~serve:(fun sys server port ->
        Mach.Ipc.serve sys port (fun msg ->
            (* consume the out-of-line data in place: read it and update
               it, breaking the receiver-side COW *)
            List.iter
              (fun r ->
                Mach.Vm.touch sys server ~addr:r.ool_addr ~write:true
                  ~bytes:r.ool_bytes ())
              msg.msg_ool;
            simple_message ()))
      ~call:(fun sys port msg -> ignore (Mach.Ipc.call sys port msg))
  in
  (* the IBM RPC rework: data already physically copied to the server *)
  let rpc_cycles, _, _ =
    measure_system ~iters ~bytes
      ~serve:(fun sys port_sys port ->
        ignore port_sys;
        Mach.Rpc.serve sys port (fun _msg -> simple_message ()))
      ~call:(fun sys port msg -> ignore (Mach.Rpc.call sys port msg))
  in
  {
    sw_bytes = bytes;
    sw_mach_ipc_cycles = mach_cycles;
    sw_ibm_rpc_cycles = rpc_cycles;
    sw_improvement = mach_cycles /. rpc_cycles;
    sw_reply_hits = reply_hits;
    sw_reply_misses = reply_misses;
  }

let ipc_sweep ?(iters = 300) ~sizes () =
  List.map (fun bytes -> sweep_one ~iters ~bytes) sizes

(* --- E5: the factor-of-3 file-server cost ----------------------------------- *)

type factor = {
  fx_rpc_cycles_per_op : float;
  fx_trap_cycles_per_op : float;
  fx_factor : float;
}

(* the same op mix against any open/read/write/seek/close surface *)
let file_mix ~ops ~open_ ~read ~write ~seek ~close =
  let h = open_ () in
  for i = 1 to ops do
    seek h (i * 512 mod 4096);
    ignore (read h 512);
    ignore (write h 512)
  done;
  close h

let fileserver_factor ?(ops = 400) () =
  (* multi-server: minimal WPOS file stack on the Pentium machine *)
  let rpc_cycles =
    let m = Machine.create Machine.Config.pentium_133 in
    let services = Mk_services.Bootstrap.boot ~naming:Mk_services.Bootstrap.Simple_naming m in
    let k = services.Mk_services.Bootstrap.kernel in
    let disk = m.Machine.disk in
    Fileserver.Hpfs.mkfs disk ();
    let vfs = Fileserver.Vfs.create () in
    let cache = Fileserver.Block_cache.create k disk () in
    (match Fileserver.Hpfs.mount cache () with
    | Ok pfs -> (
        match Fileserver.Vfs.mount vfs ~at:"/os2" pfs with
        | Ok () -> ()
        | Error e -> failwith e)
    | Error e -> failwith (Fileserver.Fs_types.fs_error_to_string e));
    let fs =
      Fileserver.File_server.start k services.Mk_services.Bootstrap.runtime vfs ()
    in
    let sem = Fileserver.Vfs.os2_semantics in
    let app = Mach.Kernel.task_create k ~name:"app" () in
    let cycles = ref 0. in
    ignore
      (Mach.Kernel.thread_spawn k app ~name:"app" (fun () ->
           let open_ () =
             match
               Fileserver.File_server.Client.open_ fs sem ~path:"/os2/bench"
                 ~create:true ()
             with
             | Ok h -> h
             | Error e -> failwith (Fileserver.Fs_types.fs_error_to_string e)
           in
           let read h n =
             match Fileserver.File_server.Client.read fs h ~bytes:n with
             | Ok b -> Bytes.length b
             | Error _ -> 0
           in
           let write h n =
             match
               Fileserver.File_server.Client.write fs h (Bytes.make n 'x')
             with
             | Ok k -> k
             | Error _ -> 0
           in
           let seek h pos = Fileserver.File_server.Client.seek fs h ~pos in
           let close h = Fileserver.File_server.Client.close fs h in
           (* warm the cache and the code paths *)
           file_mix ~ops:(ops / 4) ~open_ ~read ~write ~seek ~close;
           let t0 = Machine.now m in
           file_mix ~ops ~open_ ~read ~write ~seek ~close;
           cycles := float_of_int (Machine.now m - t0) /. float_of_int ops)
        : thread);
    Mach.Kernel.run k;
    !cycles
  in
  (* monolithic: the same code in-kernel *)
  let trap_cycles =
    let m = Machine.create Machine.Config.pentium_133 in
    let mono = Monolithic.boot m ~fs_format:`Hpfs () in
    let cycles = ref 0. in
    ignore
      (Monolithic.spawn_process mono ~name:"app" (fun () ->
           let open_ () =
             match Monolithic.sys_open mono ~path:"/c/bench" ~create:true () with
             | Ok h -> h
             | Error e -> failwith (Fileserver.Fs_types.fs_error_to_string e)
           in
           let read h n =
             match Monolithic.sys_read mono h ~bytes:n with
             | Ok b -> Bytes.length b
             | Error _ -> 0
           in
           let write h n =
             match Monolithic.sys_write mono h (Bytes.make n 'x') with
             | Ok k -> k
             | Error _ -> 0
           in
           let seek h pos = Monolithic.sys_seek mono h ~pos in
           let close h = Monolithic.sys_close mono h in
           file_mix ~ops:(ops / 4) ~open_ ~read ~write ~seek ~close;
           let t0 = Machine.now m in
           file_mix ~ops ~open_ ~read ~write ~seek ~close;
           cycles := float_of_int (Machine.now m - t0) /. float_of_int ops)
        : Mach.Ktypes.task);
    Monolithic.run mono;
    !cycles
  in
  {
    fx_rpc_cycles_per_op = rpc_cycles;
    fx_trap_cycles_per_op = trap_cycles;
    fx_factor = rpc_cycles /. trap_cycles;
  }
