(* The smp-scaling experiment: the same workloads driven at 1, 2, 4 and
   8 simulated CPUs, measuring how aggregate throughput bends as the
   shared bus saturates and how the placement policy moves the cross-CPU
   traffic.

   Two workloads:
   - [ipc]: the ipc-stress round-trip engine (IBM RPC transport), eight
     client/server pairs, under three placements:
       colocated  — each pair homed on one CPU (pair k on CPU k mod n):
                    no cross-CPU wakeups, contention is bus-only;
       crossed    — client and server of every pair on different CPUs:
                    every round trip is two LWKT wake messages + IPIs;
       unbalanced — everything spawned on CPU 0, unbound: idle CPUs pull
                    work over by stealing, after which the stolen
                    client's server wakes it cross-CPU.
   - [fileserver]: the E1-style edit-session workload against the HPFS
     file server; server and services live on the boot CPU, clients
     spread round-robin — the many-clients-one-server shape whose server
     CPU is the ceiling.

   Every point boots a fresh machine, so points are independent and the
   1-CPU column doubles as a regression anchor against the uniprocessor
   scheduler. *)

open Mach.Ktypes
module F = Fileserver

type placement = Colocated | Crossed | Unbalanced

let placement_name = function
  | Colocated -> "colocated"
  | Crossed -> "crossed"
  | Unbalanced -> "unbalanced"

type point = {
  sp_workload : string;  (* "ipc" or "fileserver" *)
  sp_placement : string;
  sp_ncpus : int;
  sp_ops : int;
  sp_wall_cycles : int;  (* furthest-ahead CPU clock at completion *)
  sp_throughput : float;  (* ops per million cycles of wall clock *)
  sp_speedup : float;  (* vs the 1-CPU point of the same series *)
  sp_ipis : int;
  sp_xmsgs : int;  (* cross-CPU scheduler messages delivered *)
  sp_steals : int;
  sp_coherence_misses : int;
  sp_bus_stall_cycles : int;
  sp_bus_transactions : int;
}

type result = {
  r_cpus : int list;
  r_pairs : int;
  r_iters : int;
  r_bytes : int;
  r_clients : int;
  r_sessions : int;
  r_points : point list;
  r_state : Machine.Footprint.machine_state list;
      (* per-CPU machine-state bytes at each CPU count (density) *)
  r_check : Check.report option;  (* Machcheck findings, when enabled *)
}

let config ~ncpus =
  Machine.Config.with_ncpus Machine.Config.pentium_133 ~n:ncpus

(* Sum an SMP counter over every CPU of the machine. *)
let sum_cpus m f =
  let acc = ref 0 in
  for i = 0 to Machine.ncpus m - 1 do
    acc := !acc + f (Machine.Cpu.perf (Machine.nth_cpu m i))
  done;
  !acc

let finish ~workload ~placement ~ncpus ~ops m sys =
  let wall = Machine.global_now m in
  {
    sp_workload = workload;
    sp_placement = placement;
    sp_ncpus = ncpus;
    sp_ops = ops;
    sp_wall_cycles = wall;
    sp_throughput =
      (if wall = 0 then 0.0 else float_of_int ops /. float_of_int wall *. 1e6);
    sp_speedup = 0.0;  (* filled in once the 1-CPU anchor is known *)
    sp_ipis = sum_cpus m Machine.Perf.ipis_sent;
    sp_xmsgs = Mach.Sched.total_xmsgs sys;
    sp_steals = Mach.Sched.total_steals sys;
    sp_coherence_misses = sum_cpus m Machine.Perf.coherence_misses;
    sp_bus_stall_cycles = sum_cpus m Machine.Perf.bus_stall_cycles;
    sp_bus_transactions = Machine.Bus.transactions m.Machine.bus;
  }

(* --- workload 1: RPC round-trip pairs ---------------------------------- *)

let measure_ipc ~ncpus ~placement ~pairs ~iters ~bytes =
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  for w = 0 to pairs - 1 do
    let client_cpu, server_cpu, bound =
      match placement with
      | Colocated -> (w mod ncpus, w mod ncpus, true)
      | Crossed -> (w mod ncpus, (w + 1) mod ncpus, true)
      | Unbalanced -> (0, 0, false)
    in
    let client =
      Mach.Kernel.task_create k ~name:(Printf.sprintf "client%d" w) ()
    in
    let server =
      Mach.Kernel.task_create k ~name:(Printf.sprintf "server%d" w) ()
    in
    let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
    ignore
      (Mach.Kernel.thread_spawn k server ~name:"srv" ~affinity:server_cpu
         ~bound
         (fun () -> Mach.Rpc.serve sys port (fun _msg -> simple_message ()))
        : thread);
    ignore
      (Mach.Kernel.thread_spawn k client ~name:"cl" ~affinity:client_cpu
         ~bound
         (fun () ->
           for _ = 1 to iters do
             ignore
               (Mach.Rpc.call sys port
                  (simple_message ~inline_bytes:bytes ()))
           done;
           Mach.Port.destroy sys port)
        : thread)
  done;
  Mach.Kernel.run k;
  finish ~workload:"ipc" ~placement:(placement_name placement) ~ncpus
    ~ops:(pairs * iters) m sys

(* --- workload 2: file-server edit sessions ------------------------------ *)

let fail_fs e = failwith (F.Fs_types.fs_error_to_string e)

let measure_fileserver ~ncpus ~clients ~sessions =
  let m = Machine.create (config ~ncpus) in
  let boot = Mk_services.Bootstrap.boot m in
  let k = boot.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let runtime = boot.Mk_services.Bootstrap.runtime in
  let disk = m.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> failwith e)
  | Error e -> fail_fs e);
  (* server and boot services stay on CPU 0 (spawned there); clients
     spread round-robin over the remaining CPUs *)
  let fs = F.File_server.start k runtime vfs () in
  let sem = F.Vfs.os2_semantics in
  let completed = ref 0 in
  for c = 0 to clients - 1 do
    let cpu = c mod ncpus in
    let client =
      Mach.Kernel.task_create k ~name:(Printf.sprintf "editor%d" c) ()
    in
    ignore
      (Mach.Kernel.thread_spawn k client ~name:"edit" ~affinity:cpu ~bound:true
         (fun () ->
           let ( let* ) r f = match r with Ok x -> f x | Error e -> Error e in
           for s = 1 to sessions do
             let path = Printf.sprintf "/os2/c%d_s%d.dat" c s in
             let outcome =
               let* h =
                 F.File_server.Client.open_ fs sem ~path ~create:true ()
               in
               let* _n = F.File_server.Client.write fs h (Bytes.make 256 'e') in
               F.File_server.Client.seek fs h ~pos:0;
               let* _data = F.File_server.Client.read fs h ~bytes:64 in
               F.File_server.Client.close fs h;
               F.File_server.Client.sync fs;
               Ok ()
             in
             match outcome with Ok () -> incr completed | Error _ -> ()
           done)
        : thread)
  done;
  Mach.Kernel.run k;
  if !completed <> clients * sessions then
    failwith
      (Printf.sprintf "Smp_scaling: fileserver completed %d/%d sessions"
         !completed (clients * sessions));
  finish ~workload:"fileserver" ~placement:"spread" ~ncpus
    ~ops:(clients * sessions) m sys

(* --- sweep --------------------------------------------------------------- *)

let default_cpus = [ 1; 2; 4; 8 ]

(* Stamp speedups into a series sharing one (workload, placement) key:
   each point relative to the 1-CPU point of its own series. *)
let with_speedups points =
  let anchor w p =
    List.find_opt
      (fun pt -> pt.sp_workload = w && pt.sp_placement = p && pt.sp_ncpus = 1)
      points
  in
  List.map
    (fun pt ->
      match anchor pt.sp_workload pt.sp_placement with
      | Some a when a.sp_throughput > 0.0 ->
          { pt with sp_speedup = pt.sp_throughput /. a.sp_throughput }
      | _ -> { pt with sp_speedup = 1.0 })
    points

let run ?(cpus = default_cpus) ?(pairs = 8) ?(iters = 150) ?(bytes = 512)
    ?(clients = 6) ?(sessions = 4) ?(checks = false) () =
  if cpus = [] then invalid_arg "Smp_scaling.run: empty CPU list";
  List.iter
    (fun n -> if n < 1 then invalid_arg "Smp_scaling.run: ncpus must be >= 1")
    cpus;
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let points =
    List.concat_map
      (fun ncpus ->
        [
          measure_ipc ~ncpus ~placement:Colocated ~pairs ~iters ~bytes;
          measure_ipc ~ncpus ~placement:Crossed ~pairs ~iters ~bytes;
          measure_ipc ~ncpus ~placement:Unbalanced ~pairs ~iters ~bytes;
          measure_fileserver ~ncpus ~clients ~sessions;
        ])
      cpus
  in
  {
    r_cpus = cpus;
    r_pairs = pairs;
    r_iters = iters;
    r_bytes = bytes;
    r_clients = clients;
    r_sessions = sessions;
    r_points = with_speedups points;
    r_state =
      List.map
        (fun n -> Machine.Footprint.machine_state (config ~ncpus:n))
        cpus;
    r_check = Option.map Check.report chk;
  }

(* The headline acceptance number: colocated ipc speedup at [n] CPUs. *)
let ipc_speedup r ~ncpus =
  match
    List.find_opt
      (fun pt ->
        pt.sp_workload = "ipc" && pt.sp_placement = "colocated"
        && pt.sp_ncpus = ncpus)
      r.r_points
  with
  | Some pt -> pt.sp_speedup
  | None -> 0.0

let to_json r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"smp-scaling\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ());
  Printf.bprintf b "  \"cpus\": [%s],\n"
    (String.concat ", " (List.map string_of_int r.r_cpus));
  Printf.bprintf b "  \"ipc\": { \"pairs\": %d, \"iters\": %d, \"bytes\": %d },\n"
    r.r_pairs r.r_iters r.r_bytes;
  Printf.bprintf b
    "  \"fileserver\": { \"clients\": %d, \"sessions\": %d },\n" r.r_clients
    r.r_sessions;
  Buffer.add_string b "  \"machine_state\": [\n";
  List.iteri
    (fun i (ms : Machine.Footprint.machine_state) ->
      Printf.bprintf b
        "    { \"ncpus\": %d, \"cache_bytes_per_cpu\": %d, \
         \"tlb_bytes_per_cpu\": %d, \"bus_directory_bytes\": %d, \
         \"total_bytes\": %d }%s\n"
        ms.Machine.Footprint.ms_ncpus
        ms.Machine.Footprint.ms_cache_bytes_per_cpu
        ms.Machine.Footprint.ms_tlb_bytes_per_cpu
        ms.Machine.Footprint.ms_bus_directory_bytes
        ms.Machine.Footprint.ms_total_bytes
        (if i = List.length r.r_state - 1 then "" else ","))
    r.r_state;
  Buffer.add_string b "  ],\n";
  (match r.r_check with
  | None -> ()
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s,\n" (Check.to_json rep));
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"workload\": %S, \"placement\": %S, \"ncpus\": %d, \
         \"ops\": %d, \"wall_cycles\": %d, \
         \"throughput_ops_per_mcycle\": %.3f, \"speedup\": %.3f, \
         \"ipis\": %d, \"xmsgs\": %d, \"steals\": %d, \
         \"coherence_misses\": %d, \"bus_stall_cycles\": %d, \
         \"bus_transactions\": %d }%s\n"
        p.sp_workload p.sp_placement p.sp_ncpus p.sp_ops p.sp_wall_cycles
        p.sp_throughput p.sp_speedup p.sp_ipis p.sp_xmsgs p.sp_steals
        p.sp_coherence_misses p.sp_bus_stall_cycles p.sp_bus_transactions
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
