(** The recovery-sweep experiment: exhaustive crash-point checking of
    the journalled file system.

    A scripted file workload runs against JFS once per {e crash point}:
    a seeded {!Mach.Fault} plan cuts disk power at write 1, write 2, ...
    write N (N learned from an un-faulted reference run).  After each
    cut the sweep plays a supervised restart — power restored, a cold
    block cache, a recovery mount that replays the journal — and checks
    that no acknowledged operation is lost and the volume passes the
    full fsck invariant scan.  Violations become Machcheck "crash"
    findings when a checker is installed ([~checks:true]), and appear in
    the point records either way.

    Two side series measure the journal's cost (cycles and disk writes
    per op against the same engine without a journal) and recovery
    latency (replay time versus journal fill). *)

type crash_point = {
  cp_write : int;  (** power cut at this disk write (1-based) *)
  cp_acked : int;  (** ops acknowledged before the cut *)
  cp_replayed_txns : int;
  cp_replayed_blocks : int;
  cp_discarded : int;
  cp_fsck_findings : int;
  cp_lost : int;  (** acked ops missing or wrong after recovery *)
  cp_torn : int;  (** invariant violations after recovery *)
  cp_recovery_cycles : int;
}

type overhead_point = {
  ov_ops : int;
  ov_plain_cycles_per_op : float;
  ov_jfs_cycles_per_op : float;
  ov_plain_disk_writes : int;
  ov_jfs_disk_writes : int;
  ov_journal_records : int;
}

type latency_point = {
  lt_ops : int;
  lt_journal_records : int;
  lt_replayed_txns : int;
  lt_replayed_blocks : int;
  lt_recovery_cycles : int;
}

type result = {
  r_seed : int;
  r_ops : int;
  r_total_writes : int;
  r_points_checked : int;
  r_exhaustive : bool;
  r_lost_writes : int;
  r_torn_states : int;
  r_points : crash_point list;
  r_overhead : overhead_point list;
  r_latency : latency_point list;
  r_check : Check.report option;
}

val run :
  ?seed:int -> ?ops:int -> ?max_points:int -> ?series:int list ->
  ?checks:bool -> unit -> result
(** [run ()] sweeps every crash point when the workload's write count
    fits [max_points] (default 64; [r_exhaustive] says so), else an
    even-stride sample.  [ops] (default 12) sizes the scripted
    workload; [series] (default [[4; 8; 16]]) sizes the overhead and
    latency side series. *)

val to_json : result -> string
(** The payload of [BENCH_recovery.json]. *)
