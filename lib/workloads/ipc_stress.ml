open Mach.Ktypes

type point = {
  pt_system : string;
  pt_bytes : int;
  pt_sim_cycles_per_op : float;
  pt_host_ns_per_op : float;
}

type result = {
  r_workers : int;
  r_iters : int;
  r_points : point list;
  r_reply_hits : int;
  r_reply_misses : int;
  r_kbuf_allocs : int;
  r_kbuf_frees : int;
  r_kbuf_recycles : int;
  r_kbuf_resets : int;
  r_kbuf_peak_bytes : int;
  r_check : Check.report option;  (* Machcheck findings, when enabled *)
}

(* One sustained run: [workers] client/server pairs on one machine, each
   pair doing [iters] round trips through the given transport.  The
   scheduler interleaves the pairs, so queue depths and buffer pressure
   resemble a loaded system rather than a lone ping-pong. *)
let measure ~system ~workers ~iters ~bytes =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  for w = 1 to workers do
    let client =
      Mach.Kernel.task_create k ~name:(Printf.sprintf "client%d" w) ()
    in
    let server =
      Mach.Kernel.task_create k ~name:(Printf.sprintf "server%d" w) ()
    in
    let port = Mach.Port.allocate sys ~receiver:server ~name:"svc" in
    match system with
    | `Mach_msg ->
        ignore
          (Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
               Mach.Ipc.serve sys port (fun msg ->
                   List.iter
                     (fun r ->
                       Mach.Vm.touch sys server ~addr:r.ool_addr ~write:true
                         ~bytes:r.ool_bytes ())
                     msg.msg_ool;
                   simple_message ()))
            : thread);
        ignore
          (Mach.Kernel.thread_spawn k client ~name:"cl" (fun () ->
               let buffer =
                 if bytes > Micro.ool_threshold then
                   Mach.Vm.allocate sys client ~bytes ()
                 else 0
               in
               let message () =
                 if bytes <= Micro.ool_threshold then
                   simple_message ~inline_bytes:bytes ()
                 else begin
                   Mach.Vm.touch sys client ~addr:buffer ~write:true ~bytes ();
                   simple_message ~inline_bytes:64 ~ool:[ (buffer, bytes) ] ()
                 end
               in
               for _ = 1 to iters do
                 ignore (Mach.Ipc.call sys port (message ()))
               done;
               Mach.Port.destroy sys port)
            : thread)
    | `Ibm_rpc | `Rpc_copy | `Rpc_remap ->
        ignore
          (Mach.Kernel.thread_spawn k server ~name:"srv" (fun () ->
               Mach.Rpc.serve sys port (fun _msg -> simple_message ()))
            : thread);
        ignore
          (Mach.Kernel.thread_spawn k client ~name:"cl" (fun () ->
               (* Large payloads go out of line; the RPC layer remaps
                  page-aligned regions and physically copies the rest, so
                  `Rpc_copy (the copy-vs-remap baseline) defeats the
                  auto-selection by offsetting into the page.  Filled
                  once: the remap path shares pages copy-on-write, so a
                  prepared buffer can be sent over and over. *)
               let ool = bytes > Micro.ool_threshold in
               let buffer =
                 if not ool then 0
                 else begin
                   let b =
                     Mach.Vm.allocate sys client ~bytes:(bytes + page_size) ()
                   in
                   Mach.Vm.touch sys client ~addr:b ~write:true ~bytes ();
                   if system = `Rpc_copy then b + 32 else b
                 end
               in
               let message () =
                 if ool then
                   simple_message ~inline_bytes:64 ~ool:[ (buffer, bytes) ] ()
                 else simple_message ~inline_bytes:bytes ()
               in
               for _ = 1 to iters do
                 ignore (Mach.Rpc.call sys port (message ()))
               done;
               Mach.Port.destroy sys port)
            : thread)
  done;
  let c0 = Machine.now m in
  let h0 = Unix.gettimeofday () in
  Mach.Kernel.run k;
  let host_ns = (Unix.gettimeofday () -. h0) *. 1e9 in
  let ops = float_of_int (workers * iters) in
  let stats = Mach.Ktext.buffer_stats k.Mach.Kernel.ktext in
  ( float_of_int (Machine.now m - c0) /. ops,
    host_ns /. ops,
    Mach.Ipc.reply_cache_hits sys,
    Mach.Ipc.reply_cache_misses sys,
    stats )

let default_sizes = [ 0; 32; 512; 4096; 16384; 65536 ]

let run ?(workers = 4) ?(iters = 200) ?(sizes = default_sizes)
    ?(checks = false) () =
  if sizes = [] then invalid_arg "Ipc_stress.run: empty size list";
  (* Machcheck rides along by global install: every machine [measure]
     boots attaches itself to the checker for the whole sweep. *)
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let hits = ref 0 and misses = ref 0 in
  let allocs = ref 0 and frees = ref 0 and recycles = ref 0 in
  let resets = ref 0 and peak = ref 0 in
  let point system name bytes =
    let sim, host, h, ms, (kb : Mach.Ktext.buffer_stats) =
      measure ~system ~workers ~iters ~bytes
    in
    hits := !hits + h;
    misses := !misses + ms;
    allocs := !allocs + kb.Mach.Ktext.bs_allocs;
    frees := !frees + kb.Mach.Ktext.bs_frees;
    recycles := !recycles + kb.Mach.Ktext.bs_recycles;
    resets := !resets + kb.Mach.Ktext.bs_resets;
    if kb.Mach.Ktext.bs_peak_bytes > !peak then
      peak := kb.Mach.Ktext.bs_peak_bytes;
    { pt_system = name; pt_bytes = bytes; pt_sim_cycles_per_op = sim;
      pt_host_ns_per_op = host }
  in
  let points =
    List.concat_map
      (fun bytes ->
        [ point `Mach_msg "mach_msg" bytes; point `Ibm_rpc "ibm_rpc" bytes ]
        @
        (* the copy-vs-remap series: same transport, same payload, the
           transfer pinned to each path (remap only engages at page
           granularity, so smaller sizes have no remap point) *)
        if bytes >= Mach.Ktypes.remap_threshold then
          [ point `Rpc_copy "rpc_copy" bytes;
            point `Rpc_remap "rpc_remap" bytes ]
        else [])
      sizes
  in
  {
    r_workers = workers;
    r_iters = iters;
    r_points = points;
    r_reply_hits = !hits;
    r_reply_misses = !misses;
    r_kbuf_allocs = !allocs;
    r_kbuf_frees = !frees;
    r_kbuf_recycles = !recycles;
    r_kbuf_resets = !resets;
    r_kbuf_peak_bytes = !peak;
    r_check = Option.map Check.report chk;
  }

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"ipc-stress\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ());
  Printf.bprintf b "  \"workers\": %d,\n" r.r_workers;
  Printf.bprintf b "  \"iters\": %d,\n" r.r_iters;
  Printf.bprintf b "  \"reply_cache\": { \"hits\": %d, \"misses\": %d },\n"
    r.r_reply_hits r.r_reply_misses;
  Printf.bprintf b
    "  \"kbuf\": { \"allocs\": %d, \"frees\": %d, \"recycles\": %d, \
     \"resets\": %d, \"peak_bytes\": %d },\n"
    r.r_kbuf_allocs r.r_kbuf_frees r.r_kbuf_recycles r.r_kbuf_resets
    r.r_kbuf_peak_bytes;
  (match r.r_check with
  | None -> ()
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s,\n" (Check.to_json rep));
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"system\": %S, \"bytes\": %d, \"sim_cycles_per_op\": %.1f, \
         \"host_ns_per_op\": %.1f }%s\n"
        p.pt_system p.pt_bytes p.pt_sim_cycles_per_op p.pt_host_ns_per_op
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* A small recursive-descent JSON reader, enough to check that the file
   the benchmark emits is well-formed and carries the expected fields
   (the repo deliberately has no JSON dependency). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
      else raise (Bad (Printf.sprintf "bad literal at %d" !pos))
    in
    let string_body () =
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> raise (Bad "unterminated string")
        | Some '"' -> advance (); Buffer.contents b
        | Some '\\' ->
            advance ();
            (match peek () with
            | Some 'n' -> Buffer.add_char b '\n'
            | Some 't' -> Buffer.add_char b '\t'
            | Some c -> Buffer.add_char b c
            | None -> raise (Bad "unterminated escape"));
            advance ();
            go ()
        | Some c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
        || c = 'E'
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then raise (Bad (Printf.sprintf "bad number at %d" start));
      float_of_string (String.sub s start (!pos - start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (advance (); Obj [])
          else Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (advance (); Arr [])
          else Arr (elements [])
      | Some '"' -> advance (); Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> raise (Bad "unexpected end of input")
    and members acc =
      skip_ws ();
      expect '"';
      let key = string_body () in
      skip_ws ();
      expect ':';
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' -> advance (); members ((key, v) :: acc)
      | Some '}' -> advance (); List.rev ((key, v) :: acc)
      | _ -> raise (Bad (Printf.sprintf "bad object at %d" !pos))
    and elements acc =
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' -> advance (); elements (v :: acc)
      | Some ']' -> advance (); List.rev (v :: acc)
      | _ -> raise (Bad (Printf.sprintf "bad array at %d" !pos))
    in
    try
      let v = value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at %d" !pos)
      else Ok v
    with Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end
