(* The net-storm experiment: a C1M-flavoured traffic generator against
   the netisr-sharded netserver, swept over 1/2/4/8 CPUs.

   Five phases, each booting a fresh machine per (phase, ncpus) point:

   - [steady]: an external traffic generator on the event timeline
     impersonates tens of thousands of clients (distinct source ports)
     and blasts datagrams uniformly over the bound endpoints in
     closed-loop bursty rounds — the packets/sec scaling anchor
     (acceptance: >= 2.5x at 4 CPUs).
   - [skew]: the same engine with Zipf(~1.0) heavy-hitter endpoint
     selection — a handful of ports absorb most of the traffic, and the
     per-shard occupancy fairness (max/mean) plus the p50/p99 delivery
     latency show what steering does under skew.
   - [churn]: full TCP open/echo/close sessions through the cross-shard
     accept protocol — the connections/sec number.
   - [synflood]: a SYN storm at a small-backlog listener (backpressure,
     not state explosion) while UDP victims complete acknowledged
     request/reply operations over a lossy wire (Mach.Fault drop rates)
     with bounded retries — acceptance: zero lost acknowledged ops.
   - [slowloris]: waves of half-open connections pinning listener
     children while a periodic reaper closes stale embryos and TCP
     victims keep completing echo sessions through the same listener.

   All randomness is a seeded LCG: every number is deterministic. *)

open Mach.Ktypes

type point = {
  np_phase : string;
  np_ncpus : int;
  np_clients : int;  (* distinct simulated client source ports *)
  np_ops : int;  (* packets delivered, or sessions completed *)
  np_wall_cycles : int;
  np_throughput : float;  (* ops per million cycles of wall clock *)
  np_speedup : float;  (* vs the 1-CPU point of the same phase *)
  np_conns : int;  (* TCP connections opened *)
  np_p50_cycles : int;  (* wire->socket delivery latency *)
  np_p99_cycles : int;
  np_fairness : float;  (* per-shard occupancy max/mean (1.0 = perfect) *)
  np_syn_drops : int;
  np_wire_drops : int;
  np_reaped : int;
  np_half_open_peak : int;
  np_retries : int;
  np_lost_acked : int;  (* acked ops that never completed: must be 0 *)
  np_xshard_msgs : int;  (* registry messages + cross-shard accepts *)
}

type result = {
  nr_cpus : int list;
  nr_endpoints : int;
  nr_clients : int;
  nr_packets : int;
  nr_bytes : int;
  nr_sessions : int;
  nr_flood_syns : int;
  nr_points : point list;
  nr_check : Check.report option;
}

let config ~ncpus =
  Machine.Config.with_ncpus Machine.Config.pentium_133 ~n:ncpus

(* --- deterministic randomness -------------------------------------------- *)

let lcg s = ((s * 1103515245) + 12345) land 0x3fffffff
let lcg_float s = float_of_int s /. float_of_int 0x40000000

(* Zipf(alpha) over [0, n): cumulative distribution, linear probe. *)
let zipf_cdf ~n ~alpha =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** alpha)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun wi ->
      acc := !acc +. (wi /. total);
      !acc)
    w

let zipf_pick cdf u =
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || cdf.(i) >= u then i else go (i + 1) in
  go 0

(* --- latency collection --------------------------------------------------- *)

type lat = { mutable ls : int list; mutable n : int }

let lat_create () = { ls = []; n = 0 }

let lat_note l x =
  l.ls <- x :: l.ls;
  l.n <- l.n + 1

let percentile l p =
  if l.n = 0 then 0
  else begin
    let a = Array.of_list l.ls in
    Array.sort compare a;
    a.(min (l.n - 1) (int_of_float (p *. float_of_int l.n)))
  end

(* One collector per shard.  Percentiles are reported for the busiest
   shard: the tail gate asks "does the heavy-hitter shard's own service
   degrade nonlinearly under load?"  Cross-shard load imbalance is a
   separate number (occupancy fairness), not smeared into the latency
   distribution. *)
let lats_create net =
  Array.init (Netserver.shard_count net) (fun _ -> lat_create ())

let lats_note ls s x = lat_note ls.(s) x
let busiest ls = Array.fold_left (fun b l -> if l.n > b.n then l else b) ls.(0) ls

(* --- shared plumbing ------------------------------------------------------ *)

let fairness net =
  let d = Netserver.shard_delivered net in
  let sum = Array.fold_left ( + ) 0 d in
  if sum = 0 || Array.length d = 0 then 1.0
  else
    let mean = float_of_int sum /. float_of_int (Array.length d) in
    float_of_int (Array.fold_left max 0 d) /. mean

let spawn_on k task name ~cpu body =
  ignore
    (Mach.Kernel.thread_spawn k task ~name ~affinity:cpu ~bound:true body
      : thread)

let finish ~phase ~ncpus ~clients ~ops ~conns ~lat ~retries ~lost
    ~half_open_peak m net =
  let wall = Machine.global_now m in
  {
    np_phase = phase;
    np_ncpus = ncpus;
    np_clients = clients;
    np_ops = ops;
    np_wall_cycles = wall;
    np_throughput =
      (if wall = 0 then 0.0 else float_of_int ops /. float_of_int wall *. 1e6);
    np_speedup = 0.0;  (* filled in once the 1-CPU anchor is known *)
    np_conns = conns;
    np_p50_cycles = percentile (busiest lat) 0.50;
    np_p99_cycles = percentile (busiest lat) 0.99;
    np_fairness = fairness net;
    np_syn_drops = Netserver.syn_drops net;
    np_wire_drops = Netserver.wire_drops net;
    np_reaped = Netserver.reaped_half_open net;
    np_half_open_peak = half_open_peak;
    np_retries = retries;
    np_lost_acked = lost;
    np_xshard_msgs =
      Netserver.registry_messages net + Netserver.cross_shard_accepts net;
  }

(* --- steady / skew: the datagram firehose -------------------------------- *)

(* The traffic generator is an external client population, so it lives
   on the machine's event timeline, not on a server CPU: every cycle of
   every CPU belongs to the stack under test, the way a C1M box faces a
   dedicated load generator across a real wire.

   Injection is windowed and closed-loop: each round offers one burst
   per lane (a lane is one generator queue's worth of clients), then
   the generator polls until the stack has drained the round completely
   before offering the next — the pacing a benchmark harness applies so
   offered load tracks the server's capacity instead of growing queues
   without bound.  One round's packets share a wire-arrival instant, so
   a shard's rx ring fills to that round's share and drains to empty:
   under Zipf skew the heavy hitter's ring is deeper every round
   (latency grows linearly with its share, fairness drops), but depth —
   and therefore the p99/p50 tail — stays bounded by a single round. *)
let burst_window = 48
let poll_gap = 4_000  (* cycles between the generator's drain polls *)

let measure_firehose ~phase ~ncpus ~endpoints ~clients ~packets ~bytes ~zipf =
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let lat = lats_create net in
  Netserver.set_delivery_probe net (lats_note lat);
  let task = Mach.Kernel.task_create k ~name:"storm" () in
  let cdf = zipf_cdf ~n:endpoints ~alpha:1.0 in
  let per_lane = packets / ncpus in
  let seeds = Array.init ncpus (fun lane -> lcg ((lane * 7919) + 17)) in
  let sent = Array.make ncpus 0 in
  let injected = ref 0 in
  let schedule at f = Machine.Event_queue.schedule m.Machine.events ~at f in
  let rec generator () =
    if Netserver.packets_processed net < !injected then
      (* the previous round is still draining: poll again *)
      schedule (Machine.now m + poll_gap) generator
    else if !injected < per_lane * ncpus then begin
      for lane = 0 to ncpus - 1 do
        let n = min burst_window (per_lane - sent.(lane)) in
        for _ = 1 to n do
          seeds.(lane) <- lcg seeds.(lane);
          let dst =
            if zipf then zipf_pick cdf (lcg_float seeds.(lane))
            else seeds.(lane) mod endpoints
          in
          sent.(lane) <- sent.(lane) + 1;
          let src = 10_000 + (((lane * per_lane) + sent.(lane)) mod clients) in
          Netserver.inject_udp net ~src_port:src ~dst_port:(100 + dst) ~bytes;
          incr injected
        done
      done;
      schedule (Machine.now m + poll_gap) generator
    end
    (* else: offered load exhausted and drained — the generator retires *)
  in
  spawn_on k task "bind" ~cpu:0 (fun () ->
      for i = 0 to endpoints - 1 do
        match Netserver.udp_socket net ~port:(100 + i) with
        | Error e -> failwith e
        | Ok _ -> ()
      done;
      schedule (Machine.now m + poll_gap) generator);
  Mach.Kernel.run k;
  let delivered = Array.fold_left ( + ) 0 (Netserver.shard_delivered net) in
  Netserver.clear_delivery_probe net;
  finish ~phase ~ncpus ~clients ~ops:delivered ~conns:0 ~lat ~retries:0
    ~lost:0 ~half_open_peak:0 m net

(* --- churn: TCP open/echo/close sessions --------------------------------- *)

let measure_churn ~ncpus ~sessions =
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let lat = lats_create net in
  Netserver.set_delivery_probe net (lats_note lat);
  let server = Mach.Kernel.task_create k ~name:"web" () in
  let clients = Mach.Kernel.task_create k ~name:"surfers" () in
  let total = sessions * ncpus in
  spawn_on k server "acceptor" ~cpu:0 (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> failwith e
      | Ok l ->
          for h = 1 to total do
            let c = Netserver.tcp_accept net l in
            (* one handler thread per connection, unbound: the stealer
               spreads them; the data itself steers by connection hash *)
            ignore
              (Mach.Kernel.thread_spawn k server
                 ~name:(Printf.sprintf "h%d" h)
                 (fun () ->
                   let n = Netserver.tcp_recv net c in
                   Netserver.tcp_send net c ~bytes:n;
                   Netserver.close net c)
                : thread)
          done);
  let completed = ref 0 in
  for cpu = 0 to ncpus - 1 do
    spawn_on k clients (Printf.sprintf "client%d" cpu) ~cpu (fun () ->
        for s = 1 to sessions do
          match Netserver.tcp_connect net ~dst_port:80 with
          | Error e -> failwith e
          | Ok c ->
              Netserver.tcp_send net c ~bytes:(128 + (64 * (s mod 7)));
              ignore (Netserver.tcp_recv net c : int);
              Netserver.close net c;
              incr completed
        done)
  done;
  Mach.Kernel.run k;
  if !completed <> total then
    failwith
      (Printf.sprintf "Net_storm: churn completed %d/%d sessions" !completed
         total);
  Netserver.clear_delivery_probe net;
  finish ~phase:"churn" ~ncpus ~clients:ncpus ~ops:!completed ~conns:total
    ~lat ~retries:0 ~lost:0 ~half_open_peak:0 m net

(* --- synflood: backpressure + acked UDP ops over a lossy wire ------------ *)

(* A victim operation is acknowledged only when the echo reply arrives;
   requests and replies both cross the faulty wire, so completion takes
   bounded retries.  [lost] counts ops that exhausted their budget —
   the acceptance gate requires zero. *)
let poll_reply sys net s ~polls ~gap =
  let rec go n =
    match Netserver.try_recv net s with
    | Some _ ->
        (* drain stale duplicates from earlier retries of this op *)
        let rec drain () =
          match Netserver.try_recv net s with
          | Some _ -> drain ()
          | None -> ()
        in
        drain ();
        true
    | None ->
        if n = 0 then false
        else begin
          ignore (Mach.Clock.sleep_for sys ~cycles:gap : kern_return);
          go (n - 1)
        end
  in
  go polls

let measure_synflood ~ncpus ~flood_syns ~victim_ops =
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create ~backlog:16 k ~style:Finegrain.Coarse in
  let plan = Mach.Fault.create ~seed:42 () in
  (* one send in eight vanishes on the wire *)
  Mach.Fault.set_rates plan ~drop_ppm:125_000 ();
  sys.Mach.Sched.faults <- Some plan;
  let lat = lats_create net in
  Netserver.set_delivery_probe net (lats_note lat);
  let task = Mach.Kernel.task_create k ~name:"siege" () in
  let retries = ref 0 and lost = ref 0 and acked = ref 0 in
  spawn_on k task "echo" ~cpu:0 (fun () ->
      match Netserver.udp_socket net ~port:7 with
      | Error e -> failwith e
      | Ok s ->
          let rec serve () =
            let src, n = Netserver.udp_recv net s in
            Netserver.udp_send net s ~dst_port:src ~bytes:n;
            serve ()
          in
          serve ());
  spawn_on k task "target" ~cpu:0 (fun () ->
      (* the attacked listener: nobody accepts, the backlog bounds it *)
      match Netserver.tcp_listen net ~port:443 with
      | Error e -> failwith e
      | Ok _ -> ());
  spawn_on k task "attacker" ~cpu:(min 1 (ncpus - 1)) (fun () ->
      ignore (Mach.Clock.sleep_for sys ~cycles:2_000 : kern_return);
      for i = 1 to flood_syns do
        Netserver.inject_syn net ~src_port:(40_000 + i) ~dst_port:443
          ~conn:(1_000_000 + i);
        if i mod 32 = 0 then
          ignore (Mach.Clock.sleep_for sys ~cycles:10_000 : kern_return)
      done);
  for cpu = 0 to ncpus - 1 do
    spawn_on k task (Printf.sprintf "victim%d" cpu) ~cpu (fun () ->
        ignore (Mach.Clock.sleep_for sys ~cycles:2_000 : kern_return);
        match Netserver.udp_socket net ~port:(20_000 + cpu) with
        | Error e -> failwith e
        | Ok s ->
            for _ = 1 to victim_ops do
              let rec attempt budget =
                if budget = 0 then incr lost
                else begin
                  Netserver.udp_send net s ~dst_port:7 ~bytes:160;
                  if poll_reply sys net s ~polls:12 ~gap:6_000 then incr acked
                  else begin
                    incr retries;
                    attempt (budget - 1)
                  end
                end
              in
              attempt 25
            done)
  done;
  Mach.Kernel.run k;
  sys.Mach.Sched.faults <- None;
  Netserver.clear_delivery_probe net;
  if !acked + !lost <> victim_ops * ncpus then
    failwith "Net_storm: synflood op accounting is broken";
  finish ~phase:"synflood" ~ncpus ~clients:ncpus ~ops:!acked ~conns:0 ~lat
    ~retries:!retries ~lost:!lost ~half_open_peak:(Netserver.half_open net) m
    net

(* --- slowloris: half-open waves vs the reaper ----------------------------- *)

let measure_slowloris ~ncpus ~flood_syns ~victim_ops =
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create ~backlog:256 k ~style:Finegrain.Coarse in
  let lat = lats_create net in
  Netserver.set_delivery_probe net (lats_note lat);
  let server = Mach.Kernel.task_create k ~name:"web" () in
  let task = Mach.Kernel.task_create k ~name:"loris" () in
  let retries = ref 0 and lost = ref 0 and acked = ref 0 in
  let peak = ref 0 in
  spawn_on k server "acceptor" ~cpu:0 (fun () ->
      match Netserver.tcp_listen net ~port:80 with
      | Error e -> failwith e
      | Ok l ->
          let rec accept_loop h =
            let c = Netserver.tcp_accept net l in
            ignore
              (Mach.Kernel.thread_spawn k server
                 ~name:(Printf.sprintf "h%d" h)
                 (fun () ->
                   (* victims send immediately; a slowloris child never
                      produces data and wedges this handler — the reaper,
                      not the handler, is the defence *)
                   let n = Netserver.tcp_recv net c in
                   Netserver.tcp_send net c ~bytes:n;
                   Netserver.close net c)
                : thread);
            accept_loop (h + 1)
          in
          accept_loop 0);
  let waves = 5 in
  spawn_on k task "slowloris" ~cpu:(min 1 (ncpus - 1)) (fun () ->
      ignore (Mach.Clock.sleep_for sys ~cycles:2_000 : kern_return);
      let per_wave = max 1 (flood_syns / waves) in
      for w = 0 to waves - 1 do
        for i = 1 to per_wave do
          Netserver.inject_syn net
            ~src_port:(50_000 + (w * per_wave) + i)
            ~dst_port:80
            ~conn:(2_000_000 + (w * per_wave) + i)
        done;
        ignore (Mach.Clock.sleep_for sys ~cycles:150_000 : kern_return)
      done);
  spawn_on k task "reaper" ~cpu:0 (fun () ->
      (* periodic stale-embryo reaping, bounded so the run terminates *)
      for _ = 1 to (waves * 2) + 2 do
        ignore (Mach.Clock.sleep_for sys ~cycles:100_000 : kern_return);
        peak := max !peak (Netserver.half_open net);
        ignore (Netserver.reap_half_open net ~older_than:120_000 : int)
      done);
  for cpu = 0 to ncpus - 1 do
    spawn_on k task (Printf.sprintf "victim%d" cpu) ~cpu (fun () ->
        ignore (Mach.Clock.sleep_for sys ~cycles:4_000 : kern_return);
        for s = 1 to victim_ops do
          let rec attempt budget =
            if budget = 0 then incr lost
            else
              match Netserver.tcp_connect_start net ~dst_port:80 with
              | Error e -> failwith e
              | Ok c ->
                  let rec poll n =
                    Netserver.established c
                    || n > 0
                       && begin
                            ignore
                              (Mach.Clock.sleep_for sys ~cycles:6_000
                                : kern_return);
                            poll (n - 1)
                          end
                  in
                  if poll 10 then begin
                    Netserver.tcp_send net c ~bytes:(96 + (s mod 5));
                    if poll_reply sys net c ~polls:12 ~gap:6_000 then begin
                      incr acked;
                      Netserver.close net c
                    end
                    else begin
                      Netserver.close net c;
                      incr retries;
                      attempt (budget - 1)
                    end
                  end
                  else begin
                    Netserver.close net c;
                    incr retries;
                    attempt (budget - 1)
                  end
          in
          attempt 25
        done)
  done;
  Mach.Kernel.run k;
  (* final sweep: nothing half-open survives the phase *)
  ignore (Netserver.reap_half_open net ~older_than:0 : int);
  Netserver.clear_delivery_probe net;
  if Netserver.half_open net <> 0 then
    failwith "Net_storm: slowloris left half-open connections unreaped";
  finish ~phase:"slowloris" ~ncpus ~clients:ncpus ~ops:!acked ~conns:!acked
    ~lat ~retries:!retries ~lost:!lost ~half_open_peak:!peak m net

(* --- sweep ---------------------------------------------------------------- *)

let default_cpus = [ 1; 2; 4; 8 ]

let with_speedups points =
  let anchor ph =
    List.find_opt (fun p -> p.np_phase = ph && p.np_ncpus = 1) points
  in
  List.map
    (fun p ->
      match anchor p.np_phase with
      | Some a when a.np_throughput > 0.0 ->
          { p with np_speedup = p.np_throughput /. a.np_throughput }
      | _ -> { p with np_speedup = 1.0 })
    points

let run ?(cpus = default_cpus) ?(endpoints = 32) ?(clients = 20_000)
    ?(packets = 12_000) ?(bytes = 512) ?(sessions = 24) ?(flood_syns = 200)
    ?(victim_ops = 12) ?(checks = false) () =
  if cpus = [] then invalid_arg "Net_storm.run: empty CPU list";
  List.iter
    (fun n -> if n < 1 then invalid_arg "Net_storm.run: ncpus must be >= 1")
    cpus;
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let flood_ncpus = List.fold_left max 1 cpus in
  let points =
    List.concat_map
      (fun ncpus ->
        [
          measure_firehose ~phase:"steady" ~ncpus ~endpoints ~clients ~packets
            ~bytes ~zipf:false;
          measure_firehose ~phase:"skew" ~ncpus ~endpoints ~clients ~packets
            ~bytes ~zipf:true;
          measure_churn ~ncpus ~sessions;
        ])
      cpus
    @ [
        measure_synflood ~ncpus:flood_ncpus ~flood_syns ~victim_ops;
        measure_slowloris ~ncpus:flood_ncpus ~flood_syns ~victim_ops;
      ]
  in
  {
    nr_cpus = cpus;
    nr_endpoints = endpoints;
    nr_clients = clients;
    nr_packets = packets;
    nr_bytes = bytes;
    nr_sessions = sessions;
    nr_flood_syns = flood_syns;
    nr_points = with_speedups points;
    nr_check = Option.map Check.report chk;
  }

(* --- acceptance probes ---------------------------------------------------- *)

let phase_point r ~phase ~ncpus =
  List.find_opt
    (fun p -> p.np_phase = phase && p.np_ncpus = ncpus)
    r.nr_points

let steady_speedup r ~ncpus =
  match phase_point r ~phase:"steady" ~ncpus with
  | Some p -> p.np_speedup
  | None -> 0.0

(* Worst p99/p50 ratio across the skewed points (ncpus > 1). *)
let skew_tail_ratio r =
  List.fold_left
    (fun acc p ->
      if p.np_phase = "skew" && p.np_ncpus > 1 && p.np_p50_cycles > 0 then
        max acc (float_of_int p.np_p99_cycles /. float_of_int p.np_p50_cycles)
      else acc)
    0.0 r.nr_points

let total_lost r =
  List.fold_left (fun acc p -> acc + p.np_lost_acked) 0 r.nr_points

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"net-storm\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ());
  Printf.bprintf b "  \"cpus\": [%s],\n"
    (String.concat ", " (List.map string_of_int r.nr_cpus));
  Printf.bprintf b
    "  \"params\": { \"endpoints\": %d, \"clients\": %d, \"packets\": %d, \
     \"bytes\": %d, \"sessions\": %d, \"flood_syns\": %d },\n"
    r.nr_endpoints r.nr_clients r.nr_packets r.nr_bytes r.nr_sessions
    r.nr_flood_syns;
  (match r.nr_check with
  | None -> ()
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s,\n" (Check.to_json rep));
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"phase\": %S, \"ncpus\": %d, \"clients\": %d, \"ops\": %d, \
         \"wall_cycles\": %d, \"throughput_ops_per_mcycle\": %.3f, \
         \"speedup\": %.3f, \"conns\": %d, \"p50_cycles\": %d, \
         \"p99_cycles\": %d, \"fairness\": %.3f, \"syn_drops\": %d, \
         \"wire_drops\": %d, \"reaped\": %d, \"half_open_peak\": %d, \
         \"retries\": %d, \"lost_acked\": %d, \"xshard_msgs\": %d }%s\n"
        p.np_phase p.np_ncpus p.np_clients p.np_ops p.np_wall_cycles
        p.np_throughput p.np_speedup p.np_conns p.np_p50_cycles p.np_p99_cycles
        p.np_fairness p.np_syn_drops p.np_wire_drops p.np_reaped
        p.np_half_open_peak p.np_retries p.np_lost_acked p.np_xshard_msgs
        (if i = List.length r.nr_points - 1 then "" else ","))
    r.nr_points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
