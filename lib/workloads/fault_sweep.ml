(* The fault-sweep experiment: the E1-style file workload driven under
   increasing injected crash rates.

   Each point boots a fresh system — microkernel, name service, HPFS
   file server under supervision — installs a seeded fault plan that
   crashes the file server at some parts-per-million rate per request,
   and runs edit sessions (open, write, seek, reads, close) from several
   client threads.  Clients go through [Rpc.call_retry] with a
   name-service re-resolve, so a crash costs them a timeout, a backoff
   and a re-open rather than the workload.  The output is the price of
   resilience: completion rate, retries, restarts and added cycles per
   operation relative to the zero-fault baseline. *)

open Mach.Ktypes
module F = Fileserver

type point = {
  p_crash_ppm : int;
  p_ops : int;  (* sessions attempted *)
  p_completed : int;
  p_retries : int;  (* call_retry re-issues *)
  p_reopens : int;  (* whole-session restarts after a lost handle *)
  p_restarts : int;  (* supervisor restarts of the file server *)
  p_gave_up : bool;
  p_injected_crashes : int;
  p_disk_faults : int;  (* injected disk-level faults (write reordering) *)
  p_cycles_per_op : float;
}

type result = {
  r_seed : int;
  r_clients : int;
  r_sessions : int;
  r_baseline_cycles_per_op : float;
  r_points : point list;
  r_check : Check.report option;  (* Machcheck findings, when enabled *)
}

let service_path = "/services/file"

let fail_fs e = failwith (F.Fs_types.fs_error_to_string e)

(* One edit session: create the file, write it, read it back in four
   chunks, close, save durably (the sync is what pushes dirty blocks to
   the disk, so the storage-fault rider has real writes to act on).  A
   crashed-and-restarted server loses the open-file table, so any step
   may come back [E_bad_handle] (or [E_io] from an exhausted retry); the
   session is then restarted from the open, a bounded number of times. *)
let run_session fs sem ~path ~reopens =
  let ( let* ) r f = match r with Ok x -> f x | Error e -> Error e in
  let once () =
    let* h = F.File_server.Client.open_ fs sem ~path ~create:true () in
    let* _n = F.File_server.Client.write fs h (Bytes.make 256 'e') in
    F.File_server.Client.seek fs h ~pos:0;
    let rec reads n =
      if n = 0 then Ok ()
      else
        let* _data = F.File_server.Client.read fs h ~bytes:64 in
        reads (n - 1)
    in
    let* () = reads 4 in
    F.File_server.Client.close fs h;
    F.File_server.Client.sync fs;
    Ok ()
  in
  let rec go tries =
    match once () with
    | Ok () -> true
    | Error _ when tries < 3 ->
        incr reopens;
        go (tries + 1)
    | Error _ -> false
  in
  go 0

let run_point ~seed ~clients ~sessions ~crash_ppm =
  let m = Machine.create Machine.Config.pentium_133 in
  let boot = Mk_services.Bootstrap.boot m in
  let k = boot.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let runtime = boot.Mk_services.Bootstrap.runtime in
  let ns = Mk_services.Bootstrap.name_service_exn boot in
  let disk = m.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> failwith e)
  | Error e -> fail_fs e);
  let fs = F.File_server.start k runtime vfs () in
  let sup = Mk_services.Supervisor.create k runtime ns in
  Drivers.Disk_driver.arm_faults k disk;
  let plan =
    if crash_ppm > 0 then begin
      let plan = Mach.Fault.create ~seed () in
      Mach.Fault.set_rates plan ~port:"file-service" ~crash_ppm ();
      (* storage faults ride along at the same rate: write reordering
         only — benign for a format whose durability contract is
         sync-based, but it exercises the barrier path under load.
         (Torn writes and bit rot would silently corrupt the
         journal-less HPFS; the recovery sweep covers those.) *)
      Mach.Fault.set_disk_rates plan ~disk:(Machine.Disk.name disk)
        ~reorder_ppm:crash_ppm ();
      sys.Mach.Sched.faults <- Some plan;
      Some plan
    end
    else None
  in
  (* client-side port cache: a live port is reused, a dead one forces a
     fresh name-service resolution (finding the supervisor's rebind) *)
  let cached = ref (Some (F.File_server.port fs)) in
  let resolve () =
    match !cached with
    | Some p when not p.dead -> Some p
    | Some _ | None ->
        let p = Mk_services.Name_service.resolve_port ns ~path:service_path in
        cached := p;
        p
  in
  (* the deadline must sit well above a legitimate op (tens of thousands
     of cycles once disk I/O is in the path) so only abandoned requests
     trip it; the backoff schedule must span a supervised restart, which
     now includes crash recovery (fsck scan over the volume) *)
  F.File_server.set_retry fs ~attempts:7 ~deadline:1_000_000
    ~backoff:1_000_000 ~resolve ();
  let sem = F.Vfs.os2_semantics in
  let completed = ref 0 in
  let reopens = ref 0 in
  let last_done = ref 0 in
  let t0 = ref 0 in
  let driver = Mach.Kernel.task_create k ~name:"sweep-driver" () in
  ignore
    (Mach.Kernel.thread_spawn k driver ~name:"sweep-main" (fun () ->
         (* registration first, so a crash at any point finds a watcher *)
         (* the old flat 64-restart cap, expressed as a budget whose
            window never expires — a sweep point is one long burst *)
         Mk_services.Supervisor.supervise sup ~path:service_path
           ~budget:64 ~window:max_int ~port:(F.File_server.port fs)
           ~restart:(fun () -> F.File_server.restart fs)
           ();
         t0 := Machine.now m;
         for c = 1 to clients do
           let client =
             Mach.Kernel.task_create k ~name:(Printf.sprintf "editor%d" c) ()
           in
           ignore
             (Mach.Kernel.thread_spawn k client ~name:"edit" (fun () ->
                  for s = 1 to sessions do
                    let path = Printf.sprintf "/os2/c%d_s%d.dat" c s in
                    if run_session fs sem ~path ~reopens then
                      incr completed;
                    last_done := Machine.now m
                  done)
               : thread)
         done)
      : thread);
  Mach.Kernel.run k;
  Mk_services.Supervisor.stop sup;
  let ops = clients * sessions in
  let cycles = max 0 (!last_done - !t0) in
  {
    p_crash_ppm = crash_ppm;
    p_ops = ops;
    p_completed = !completed;
    p_retries = sys.Mach.Sched.retry_attempts;
    p_reopens = !reopens;
    p_restarts = Mk_services.Supervisor.restarts sup;
    p_gave_up = Mk_services.Supervisor.gave_up sup;
    p_injected_crashes =
      (match plan with Some p -> Mach.Fault.injected_crashes p | None -> 0);
    p_disk_faults =
      (match plan with Some p -> Mach.Fault.injected_disk_faults p | None -> 0);
    p_cycles_per_op =
      (if ops = 0 then 0.0 else float_of_int cycles /. float_of_int ops);
  }

let default_rates = [ 2_000; 10_000; 30_000 ]

let run ?(seed = 42) ?(clients = 4) ?(sessions = 10) ?(rates = default_rates)
    ?(checks = false) () =
  if rates = [] then invalid_arg "Fault_sweep.run: empty rate list";
  (* Machcheck rides along by global install: each point's boot attaches
     its kernel to the checker, including every supervised restart. *)
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let baseline = run_point ~seed ~clients ~sessions ~crash_ppm:0 in
  let points =
    List.map (fun ppm -> run_point ~seed ~clients ~sessions ~crash_ppm:ppm)
      rates
  in
  {
    r_seed = seed;
    r_clients = clients;
    r_sessions = sessions;
    r_baseline_cycles_per_op = baseline.p_cycles_per_op;
    r_points = points;
    r_check = Option.map Check.report chk;
  }

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"fault-sweep\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ~seed:r.r_seed ());
  Printf.bprintf b "  \"seed\": %d,\n" r.r_seed;
  Printf.bprintf b "  \"clients\": %d,\n" r.r_clients;
  Printf.bprintf b "  \"sessions\": %d,\n" r.r_sessions;
  Printf.bprintf b "  \"ops\": %d,\n" (r.r_clients * r.r_sessions);
  Printf.bprintf b "  \"baseline_cycles_per_op\": %.1f,\n"
    r.r_baseline_cycles_per_op;
  (match r.r_check with
  | None -> ()
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s,\n" (Check.to_json rep));
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"crash_ppm\": %d, \"ops\": %d, \"completed\": %d, \
         \"completion_rate\": %.3f, \"retries\": %d, \"reopens\": %d, \
         \"restarts\": %d, \"gave_up\": %b, \"injected_crashes\": %d, \
         \"disk_faults\": %d, \"cycles_per_op\": %.1f, \
         \"added_cycles_per_op\": %.1f }%s\n"
        p.p_crash_ppm p.p_ops p.p_completed
        (if p.p_ops = 0 then 0.0
         else float_of_int p.p_completed /. float_of_int p.p_ops)
        p.p_retries p.p_reopens p.p_restarts p.p_gave_up p.p_injected_crashes
        p.p_disk_faults p.p_cycles_per_op
        (p.p_cycles_per_op -. r.r_baseline_cycles_per_op)
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
