(** The vfs-walk experiment: path resolution through the vnode layer and
    the name cache.

    Builds a deep directory chain and a wide directory of small files on
    an HPFS volume, then measures the walk phases: cold (misses fill the
    cache), hot (the repeated-lookup phase whose hit rate is the
    acceptance number), the deepest path with the cache on versus off
    (their cycles/op ratio is [deep_speedup]), and concurrent lookups
    racing across CPUs. *)

type phase = {
  ph_name : string;
  ph_ops : int;
  ph_cycles : int;
  ph_cycles_per_op : float;
  ph_hits : int;  (** positive + negative cache hits during the phase *)
  ph_misses : int;
  ph_hit_rate : float;  (** hits / (hits + misses); 0 when no probes *)
}

type result = {
  r_depth : int;
  r_files : int;
  r_repeats : int;
  r_cpus : int;
  r_phases : phase list;
  r_hot_hit_rate : float;
  r_deep_cached_cycles_per_op : float;
  r_deep_raw_cycles_per_op : float;
  r_deep_speedup : float;  (** deep-raw over deep-cached cycles/op *)
  r_concurrent_ok : int;
  r_concurrent_expected : int;
  r_compromises : int;
  r_cache : Fileserver.Namecache.stats;  (** final cache counters *)
  r_check : Check.report option;
}

val run :
  ?depth:int -> ?files:int -> ?repeats:int -> ?cpus:int -> ?checks:bool ->
  unit -> result
(** Defaults: a 12-deep chain, 48 wide files, 6 hot repeats, 4 CPUs.
    [~checks:true] runs under Machcheck's vnode/name-cache checker
    (globally installed for the duration). *)

val to_json : result -> string
