(* The vfs-walk experiment: path resolution through the vnode layer and
   the name cache, measured in simulated cycles.

   One machine, one HPFS volume.  The driver builds a deep directory
   chain and a wide directory of small files, then walks them in phases:

     build       — mkdir the chain, create and fill the files;
     cold        — first stat of every path: misses fill the cache;
     hot         — the same set stat repeatedly: the repeated-lookup
                   phase whose hit rate is the acceptance number;
     deep-cached — the deepest path resolved again and again with the
                   cache on (each component is one charged hash probe);
     deep-raw    — the same walks with the cache off: every component is
                   a per-format directory scan through the block cache;
     concurrent  — one walker thread per CPU, each statting the whole
                   wide set, lookups racing across CPUs.

   deep_speedup = deep-raw cycles/op over deep-cached cycles/op.  The
   whole run can execute under Machcheck's vnode checker ([~checks]);
   a finding means the walk used a reclaimed vnode or a stale entry. *)

module F = Fileserver

type phase = {
  ph_name : string;
  ph_ops : int;
  ph_cycles : int;
  ph_cycles_per_op : float;
  ph_hits : int;  (* positive + negative cache hits during the phase *)
  ph_misses : int;
  ph_hit_rate : float;  (* hits / (hits + misses); 0 when no probes *)
}

type result = {
  r_depth : int;
  r_files : int;
  r_repeats : int;
  r_cpus : int;
  r_phases : phase list;
  r_hot_hit_rate : float;
  r_deep_cached_cycles_per_op : float;
  r_deep_raw_cycles_per_op : float;
  r_deep_speedup : float;
  r_concurrent_ok : int;
  r_concurrent_expected : int;
  r_compromises : int;
  r_cache : F.Namecache.stats;  (* final cache counters *)
  r_check : Check.report option;
}

let fail_fs e = failwith (F.Fs_types.fs_error_to_string e)

let ok_exn = function Ok v -> v | Error e -> fail_fs e

let deep_path depth =
  "/os2/"
  ^ String.concat "/" (List.init depth (Printf.sprintf "d%02d"))
  ^ "/leaf.dat"

let wide_path i = Printf.sprintf "/os2/wide/f%03d.dat" i

let run ?(depth = 12) ?(files = 48) ?(repeats = 6) ?(cpus = 4)
    ?(checks = false) () =
  if depth < 1 then invalid_arg "Vfs_walk.run: depth must be >= 1";
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let m =
    Machine.create (Machine.Config.with_ncpus Machine.Config.pentium_133 ~n:cpus)
  in
  let k = Mach.Kernel.boot m in
  let disk = m.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create ~kernel:k () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> failwith e)
  | Error e -> fail_fs e);
  let sem = F.Vfs.os2_semantics in
  let phases = ref [] in
  let measure name ops f =
    let s0 = F.Vfs.cache_stats vfs in
    let t0 = Machine.global_now m in
    f ();
    let cycles = Machine.global_now m - t0 in
    let s1 = F.Vfs.cache_stats vfs in
    let hits =
      s1.F.Namecache.cs_hits + s1.F.Namecache.cs_neg_hits
      - (s0.F.Namecache.cs_hits + s0.F.Namecache.cs_neg_hits)
    in
    let misses = s1.F.Namecache.cs_misses - s0.F.Namecache.cs_misses in
    let probes = hits + misses in
    let ph =
      {
        ph_name = name;
        ph_ops = ops;
        ph_cycles = cycles;
        ph_cycles_per_op =
          (if ops = 0 then 0.0
           else float_of_int cycles /. float_of_int ops);
        ph_hits = hits;
        ph_misses = misses;
        ph_hit_rate =
          (if probes = 0 then 0.0
           else float_of_int hits /. float_of_int probes);
      }
    in
    phases := ph :: !phases;
    ph
  in
  let stat_all () =
    ignore (ok_exn (F.Vfs.stat vfs sem ~path:(deep_path depth)));
    for i = 0 to files - 1 do
      ignore (ok_exn (F.Vfs.stat vfs sem ~path:(wide_path i)))
    done
  in
  let deep_walks = 32 in
  let concurrent_ok = ref 0 in
  let driver = Mach.Kernel.task_create k ~name:"walker" () in
  ignore
    (Mach.Kernel.thread_spawn k driver ~name:"drive" (fun () ->
         ignore
           (measure "build" (depth + 1 + files) (fun () ->
                let dir = ref "/os2" in
                for d = 0 to depth - 1 do
                  dir := Printf.sprintf "%s/d%02d" !dir d;
                  ignore (ok_exn (F.Vfs.mkdir vfs sem ~path:!dir))
                done;
                ignore
                  (ok_exn
                     (F.Vfs.create_file vfs sem ~path:(!dir ^ "/leaf.dat")));
                ignore (ok_exn (F.Vfs.mkdir vfs sem ~path:"/os2/wide"));
                for i = 0 to files - 1 do
                  ignore (ok_exn (F.Vfs.create_file vfs sem ~path:(wide_path i)))
                done));
         (* drop the entries the creates primed, so "cold" is cold *)
         F.Vfs.set_namecache vfs false;
         F.Vfs.set_namecache vfs true;
         ignore (measure "cold" (1 + files) stat_all);
         ignore
           (measure "hot"
              (repeats * (1 + files))
              (fun () ->
                for _ = 1 to repeats do
                  stat_all ()
                done));
         ignore
           (measure "deep-cached" deep_walks (fun () ->
                for _ = 1 to deep_walks do
                  ignore (ok_exn (F.Vfs.stat vfs sem ~path:(deep_path depth)))
                done));
         F.Vfs.set_namecache vfs false;
         ignore
           (measure "deep-raw" deep_walks (fun () ->
                for _ = 1 to deep_walks do
                  ignore (ok_exn (F.Vfs.stat vfs sem ~path:(deep_path depth)))
                done));
         F.Vfs.set_namecache vfs true;
         (* racing walkers, one bound per CPU; the driver exits and the
            kernel runs until they drain *)
         for c = 0 to cpus - 1 do
           let task =
             Mach.Kernel.task_create k ~name:(Printf.sprintf "walk%d" c) ()
           in
           ignore
             (Mach.Kernel.thread_spawn k task ~name:"walk" ~affinity:c
                ~bound:true (fun () ->
                  for i = 0 to files - 1 do
                    match F.Vfs.stat vfs sem ~path:(wide_path i) with
                    | Ok _ -> incr concurrent_ok
                    | Error _ -> ()
                  done)
               : Mach.Ktypes.thread)
         done)
      : Mach.Ktypes.thread);
  Mach.Kernel.run k;
  let phase name = List.find (fun p -> p.ph_name = name) !phases in
  let hot = phase "hot" in
  let cached = phase "deep-cached" in
  let raw = phase "deep-raw" in
  {
    r_depth = depth;
    r_files = files;
    r_repeats = repeats;
    r_cpus = cpus;
    r_phases = List.rev !phases;
    r_hot_hit_rate = hot.ph_hit_rate;
    r_deep_cached_cycles_per_op = cached.ph_cycles_per_op;
    r_deep_raw_cycles_per_op = raw.ph_cycles_per_op;
    r_deep_speedup =
      (if cached.ph_cycles_per_op > 0.0 then
         raw.ph_cycles_per_op /. cached.ph_cycles_per_op
       else 0.0);
    r_concurrent_ok = !concurrent_ok;
    r_concurrent_expected = cpus * files;
    r_compromises = F.Vfs.compromises vfs;
    r_cache = F.Vfs.cache_stats vfs;
    r_check = Option.map Check.report chk;
  }

let to_json r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"vfs-walk\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ());
  Printf.bprintf b
    "  \"config\": { \"depth\": %d, \"files\": %d, \"repeats\": %d, \
     \"cpus\": %d },\n"
    r.r_depth r.r_files r.r_repeats r.r_cpus;
  Buffer.add_string b "  \"phases\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"phase\": %S, \"ops\": %d, \"cycles\": %d, \
         \"cycles_per_op\": %.1f, \"cache_hits\": %d, \"cache_misses\": %d, \
         \"hit_rate\": %.4f }%s\n"
        p.ph_name p.ph_ops p.ph_cycles p.ph_cycles_per_op p.ph_hits p.ph_misses
        p.ph_hit_rate
        (if i = List.length r.r_phases - 1 then "" else ","))
    r.r_phases;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b "  \"hot_hit_rate\": %.4f,\n" r.r_hot_hit_rate;
  Printf.bprintf b "  \"deep_cached_cycles_per_op\": %.1f,\n"
    r.r_deep_cached_cycles_per_op;
  Printf.bprintf b "  \"deep_raw_cycles_per_op\": %.1f,\n"
    r.r_deep_raw_cycles_per_op;
  Printf.bprintf b "  \"deep_speedup\": %.2f,\n" r.r_deep_speedup;
  Printf.bprintf b
    "  \"concurrent\": { \"completed\": %d, \"expected\": %d },\n"
    r.r_concurrent_ok r.r_concurrent_expected;
  Printf.bprintf b "  \"compromises\": %d,\n" r.r_compromises;
  Printf.bprintf b
    "  \"cache\": { \"capacity\": %d, \"entries\": %d, \"insertions\": %d, \
     \"evictions\": %d, \"invalidations\": %d },\n"
    r.r_cache.F.Namecache.cs_capacity r.r_cache.F.Namecache.cs_entries
    r.r_cache.F.Namecache.cs_insertions r.r_cache.F.Namecache.cs_evictions
    r.r_cache.F.Namecache.cs_invalidations;
  (match r.r_check with
  | None -> Buffer.add_string b "  \"machcheck\": null\n"
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s\n" (Check.to_json rep));
  Buffer.add_string b "}\n";
  Buffer.contents b
