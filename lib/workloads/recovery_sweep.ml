(* The recovery-sweep experiment: exhaustive crash-point checking of the
   journalled file system, plus the price and payoff of the journal.

   The core loop is the crash-consistency check the paper's multi-server
   design calls for: run a scripted file workload against JFS, learn how
   many disk writes it issues, then re-run it once per crash point — a
   seeded fault plan cuts disk power at write 1, write 2, ... write N —
   and after each cut recover (fresh cache, remount with journal replay,
   fsck) and verify two invariants:

   - no acknowledged operation is lost: every create/remove that
     returned [Ok] while the disk was still powered must be visible,
     byte-exact, after recovery;
   - no torn state: the recovered volume passes the full invariant scan.

   Violations surface as Machcheck "crash" findings when a checker is
   installed, and in the point records either way.  Two side series
   measure the journal's cost (cycles and disk writes per op, JFS vs the
   same format without a journal) and recovery latency (replay time as a
   function of journal fill). *)

module F = Fileserver

type crash_point = {
  cp_write : int;  (* power cut at this disk write (1-based) *)
  cp_acked : int;  (* ops acknowledged before the cut *)
  cp_replayed_txns : int;
  cp_replayed_blocks : int;
  cp_discarded : int;
  cp_fsck_findings : int;
  cp_lost : int;  (* acked ops missing/wrong after recovery *)
  cp_torn : int;  (* invariant violations after recovery *)
  cp_recovery_cycles : int;
}

type overhead_point = {
  ov_ops : int;
  ov_plain_cycles_per_op : float;  (* same format, no journal (HPFS) *)
  ov_jfs_cycles_per_op : float;
  ov_plain_disk_writes : int;
  ov_jfs_disk_writes : int;
  ov_journal_records : int;
}

type latency_point = {
  lt_ops : int;
  lt_journal_records : int;
  lt_replayed_txns : int;
  lt_replayed_blocks : int;
  lt_recovery_cycles : int;
}

type result = {
  r_seed : int;
  r_ops : int;
  r_total_writes : int;  (* disk writes the un-faulted workload issues *)
  r_points_checked : int;
  r_exhaustive : bool;  (* every write index was a crash point *)
  r_lost_writes : int;
  r_torn_states : int;
  r_points : crash_point list;
  r_overhead : overhead_point list;
  r_latency : latency_point list;
  r_check : Check.report option;
}

let fail_fs e = failwith (F.Fs_types.fs_error_to_string e)

(* --- the scripted workload ----------------------------------------------- *)

(* Deterministic op list: mostly creates-with-content, every fifth op
   removes the oldest file still present, content sizes straddle the
   one-block boundary so transactions carry one to several data blocks. *)

type op = Op_create of string * bytes | Op_remove of string

let content i =
  let len = 64 + (i * 263 mod 1837) in
  Bytes.init len (fun j -> Char.chr ((i * 31 + j * 7) land 0xFF))

let script ops =
  let live = ref [] in
  let acc = ref [] in
  for i = 1 to ops do
    if i mod 5 = 0 && !live <> [] then begin
      let name = List.hd (List.rev !live) in
      live := List.filter (fun n -> n <> name) !live;
      acc := Op_remove name :: !acc
    end
    else begin
      let name = Printf.sprintf "f%03d.dat" i in
      live := name :: !live;
      acc := Op_create (name, content i) :: !acc
    end
  done;
  List.rev !acc

(* Run the script at the pfs layer (from a kernel thread: disk I/O
   blocks).  An op is {e acknowledged} — recorded in [expect] — only
   when it returned [Ok] while the disk was still powered: once the
   power cut lands, later "successes" live only in the doomed cache and
   carry no durability promise. *)
let run_script (pfs : F.Fs_types.pfs) disk ops expect =
  List.iter
    (fun op ->
      let r =
        match op with
        | Op_create (name, data) -> (
            match pfs.F.Fs_types.pfs_create ~dir:pfs.F.Fs_types.pfs_root name
                    ~is_dir:false
            with
            | Ok id -> (
                match pfs.F.Fs_types.pfs_write id ~off:0 data with
                | Ok _ -> Ok ()
                | Error e -> Error e)
            | Error e -> Error e)
        | Op_remove name ->
            pfs.F.Fs_types.pfs_remove ~dir:pfs.F.Fs_types.pfs_root name
      in
      match r with
      | Ok () when Machine.Disk.powered_on disk ->
          let name, what =
            match op with
            | Op_create (name, data) -> (name, Some data)
            | Op_remove name -> (name, None)
          in
          expect := (name, what) :: List.remove_assoc name !expect
      | Ok () | Error _ -> ())
    ops

(* Verify every acknowledged op against the recovered volume. *)
let verify (pfs : F.Fs_types.pfs) expect ~lost =
  List.iter
    (fun (name, what) ->
      let looked = pfs.F.Fs_types.pfs_lookup ~dir:pfs.F.Fs_types.pfs_root name in
      match (what, looked) with
      | Some data, Ok id -> (
          let len = Bytes.length data in
          match pfs.F.Fs_types.pfs_read id ~off:0 ~len with
          | Ok got when Bytes.equal got data -> (
              match pfs.F.Fs_types.pfs_stat id with
              | Ok st when st.F.Fs_types.st_size = len -> ()
              | Ok st ->
                  lost
                    (Printf.sprintf
                       "%s: acked size %d but recovered size %d" name len
                       st.F.Fs_types.st_size)
              | Error e ->
                  lost
                    (Printf.sprintf "%s: stat after recovery failed: %s" name
                       (F.Fs_types.fs_error_to_string e)))
          | Ok _ -> lost (Printf.sprintf "%s: content differs after recovery" name)
          | Error e ->
              lost
                (Printf.sprintf "%s: read after recovery failed: %s" name
                   (F.Fs_types.fs_error_to_string e)))
      | Some _, Error e ->
          lost
            (Printf.sprintf "%s: acked file missing after recovery (%s)" name
               (F.Fs_types.fs_error_to_string e))
      | None, Error F.Fs_types.E_not_found -> ()
      | None, Ok _ ->
          lost (Printf.sprintf "%s: acked remove resurfaced after recovery" name)
      | None, Error e ->
          lost
            (Printf.sprintf "%s: lookup after acked remove failed oddly: %s"
               name
               (F.Fs_types.fs_error_to_string e)))
    expect

(* --- Machcheck hooks ------------------------------------------------------ *)

let chk_point (sys : Mach.Sched.t) =
  match sys.Mach.Sched.checks with
  | Some c -> Check.crash_point_checked c ~space:sys.Mach.Sched.check_space
  | None -> ()

let chk_lost (sys : Mach.Sched.t) detail =
  match sys.Mach.Sched.checks with
  | Some c -> Check.crash_lost_write c ~space:sys.Mach.Sched.check_space detail
  | None -> ()

let chk_torn (sys : Mach.Sched.t) detail =
  match sys.Mach.Sched.checks with
  | Some c -> Check.crash_torn_state c ~space:sys.Mach.Sched.check_space detail
  | None -> ()

(* --- one system per point ------------------------------------------------- *)

type fmt = Plain | Journalled

let boot_fs fmt =
  let m = Machine.create Machine.Config.pentium_133 in
  let k = Mach.Kernel.boot m in
  let disk = m.Machine.disk in
  (match fmt with
  | Plain -> F.Hpfs.mkfs disk ()
  | Journalled -> F.Jfs.mkfs disk ());
  let cache = F.Block_cache.create k disk () in
  let pfs =
    match
      (match fmt with
      | Plain -> F.Hpfs.mount cache ()
      | Journalled -> F.Jfs.mount cache ())
    with
    | Ok pfs -> pfs
    | Error e -> fail_fs e
  in
  (m, k, disk, cache, pfs)

let spawn_main k body =
  let task = Mach.Kernel.task_create k ~name:"recovery-sweep" () in
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"driver" body : Mach.Ktypes.thread);
  Mach.Kernel.run k

(* The un-faulted reference run: how many disk writes does the workload
   issue?  That count is the crash-point index space — the same script
   under the same deterministic machine issues the identical write
   sequence, so "power cut at write [n]" is meaningful for n in
   [1 .. total]. *)
let count_writes ~ops =
  let m, k, disk, _cache, pfs = boot_fs Journalled in
  ignore m;
  let w0 = Machine.Disk.writes_applied disk in
  let expect = ref [] in
  spawn_main k (fun () -> run_script pfs disk (script ops) expect);
  Machine.Disk.writes_applied disk - w0

let run_crash_point ~seed ~ops ~n =
  let m, k, disk, _cache, pfs = boot_fs Journalled in
  let sys = k.Mach.Kernel.sys in
  Drivers.Disk_driver.arm_faults k disk;
  let plan = Mach.Fault.create ~seed () in
  Mach.Fault.at_disk_write plan ~disk:(Machine.Disk.name disk) ~n
    Mach.Fault.Power_cut;
  sys.Mach.Sched.faults <- Some plan;
  let expect = ref [] in
  let lost = ref 0 in
  let torn = ref 0 in
  let rv = ref F.Journal.clean_scan in
  let fsck_count = ref 0 in
  let t0 = ref 0 in
  let t1 = ref 0 in
  spawn_main k (fun () ->
      run_script pfs disk (script ops) expect;
      (* the crash has happened (the plan cut power at write [n]); now
         play the supervised restart: faults off, power back, and a
         recovery mount against a cold cache — the dead incarnation's
         dirty blocks are gone, as they would be *)
      sys.Mach.Sched.faults <- None;
      Machine.Disk.power_restore disk;
      let cache2 = F.Block_cache.create k disk () in
      t0 := Machine.now m;
      (match F.Jfs.mount cache2 () with
      | Ok pfs2 ->
          (match F.Jfs.last_recovery cache2 with
          | Some r -> rv := r
          | None -> ());
          let findings = F.Jfs.fsck cache2 () in
          t1 := Machine.now m;
          fsck_count := List.length findings;
          List.iter
            (fun f ->
              incr torn;
              chk_torn sys (Printf.sprintf "crash@write %d: fsck: %s" n f))
            findings;
          verify pfs2 !expect ~lost:(fun detail ->
              incr lost;
              chk_lost sys (Printf.sprintf "crash@write %d: %s" n detail))
      | Error e ->
          t1 := Machine.now m;
          incr torn;
          chk_torn sys
            (Printf.sprintf "crash@write %d: recovery mount failed: %s" n
               (F.Fs_types.fs_error_to_string e)));
      chk_point sys);
  {
    cp_write = n;
    cp_acked = List.length !expect;
    cp_replayed_txns = !rv.F.Journal.rv_replayed_txns;
    cp_replayed_blocks = !rv.F.Journal.rv_replayed_blocks;
    cp_discarded = !rv.F.Journal.rv_discarded;
    cp_fsck_findings = !fsck_count;
    cp_lost = !lost;
    cp_torn = !torn;
    cp_recovery_cycles = max 0 (!t1 - !t0);
  }

(* --- journal overhead and recovery latency -------------------------------- *)

(* Same script, same extfs engine, journal on vs off: the delta is what
   write-ahead logging costs in cycles and disk traffic. *)
let run_overhead_point ~ops =
  let timed fmt =
    let m, k, disk, cache, pfs = boot_fs fmt in
    let w0 = Machine.Disk.writes_applied disk in
    let expect = ref [] in
    let t0 = ref 0 in
    let t1 = ref 0 in
    spawn_main k (fun () ->
        t0 := Machine.now m;
        run_script pfs disk (script ops) expect;
        pfs.F.Fs_types.pfs_sync ();
        t1 := Machine.now m);
    let cycles = float_of_int (max 0 (!t1 - !t0)) /. float_of_int (max 1 ops) in
    (cycles, Machine.Disk.writes_applied disk - w0, F.Extfs.journal_writes cache)
  in
  let plain_cycles, plain_writes, _ = timed Plain in
  let jfs_cycles, jfs_writes, records = timed Journalled in
  {
    ov_ops = ops;
    ov_plain_cycles_per_op = plain_cycles;
    ov_jfs_cycles_per_op = jfs_cycles;
    ov_plain_disk_writes = plain_writes;
    ov_jfs_disk_writes = jfs_writes;
    ov_journal_records = records;
  }

(* Run the workload without a sync, abandon the dirty cache (the crash),
   and time the recovery mount: replay work grows with journal fill. *)
let run_latency_point ~ops =
  let m, k, disk, cache, pfs = boot_fs Journalled in
  let expect = ref [] in
  let rv = ref F.Journal.clean_scan in
  let t0 = ref 0 in
  let t1 = ref 0 in
  spawn_main k (fun () ->
      run_script pfs disk (script ops) expect;
      let cache2 = F.Block_cache.create k disk () in
      t0 := Machine.now m;
      (match F.Jfs.mount cache2 () with
      | Ok _ -> (
          match F.Jfs.last_recovery cache2 with
          | Some r -> rv := r
          | None -> ())
      | Error e -> fail_fs e);
      t1 := Machine.now m);
  {
    lt_ops = ops;
    lt_journal_records = F.Extfs.journal_writes cache;
    lt_replayed_txns = !rv.F.Journal.rv_replayed_txns;
    lt_replayed_blocks = !rv.F.Journal.rv_replayed_blocks;
    lt_recovery_cycles = max 0 (!t1 - !t0);
  }

(* --- the sweep ------------------------------------------------------------ *)

let default_series = [ 4; 8; 16 ]

let run ?(seed = 42) ?(ops = 12) ?(max_points = 64) ?(series = default_series)
    ?(checks = false) () =
  if ops <= 0 then invalid_arg "Recovery_sweep.run: ops must be positive";
  if max_points <= 0 then
    invalid_arg "Recovery_sweep.run: max_points must be positive";
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let total = count_writes ~ops in
  let indices =
    if total <= max_points then List.init total (fun i -> i + 1)
    else
      (* even stride across [1 .. total], endpoints included *)
      List.init max_points (fun i ->
          1 + (i * (total - 1) / (max_points - 1)))
      |> List.sort_uniq compare
  in
  let points = List.map (fun n -> run_crash_point ~seed ~ops ~n) indices in
  let overhead = List.map (fun ops -> run_overhead_point ~ops) series in
  let latency = List.map (fun ops -> run_latency_point ~ops) series in
  {
    r_seed = seed;
    r_ops = ops;
    r_total_writes = total;
    r_points_checked = List.length points;
    r_exhaustive = total <= max_points;
    r_lost_writes = List.fold_left (fun a p -> a + p.cp_lost) 0 points;
    r_torn_states = List.fold_left (fun a p -> a + p.cp_torn) 0 points;
    r_points = points;
    r_overhead = overhead;
    r_latency = latency;
    r_check = Option.map Check.report chk;
  }

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"recovery-sweep\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ~seed:r.r_seed ());
  Printf.bprintf b "  \"seed\": %d,\n" r.r_seed;
  Printf.bprintf b "  \"ops\": %d,\n" r.r_ops;
  Printf.bprintf b "  \"total_writes\": %d,\n" r.r_total_writes;
  Printf.bprintf b "  \"points_checked\": %d,\n" r.r_points_checked;
  Printf.bprintf b "  \"exhaustive\": %b,\n" r.r_exhaustive;
  Printf.bprintf b "  \"lost_writes\": %d,\n" r.r_lost_writes;
  Printf.bprintf b "  \"torn_states\": %d,\n" r.r_torn_states;
  (match r.r_check with
  | None -> ()
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s,\n" (Check.to_json rep));
  Buffer.add_string b "  \"crash_points\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"write\": %d, \"acked_ops\": %d, \"replayed_txns\": %d, \
         \"replayed_blocks\": %d, \"discarded\": %d, \"fsck_findings\": %d, \
         \"lost\": %d, \"torn\": %d, \"recovery_cycles\": %d }%s\n"
        p.cp_write p.cp_acked p.cp_replayed_txns p.cp_replayed_blocks
        p.cp_discarded p.cp_fsck_findings p.cp_lost p.cp_torn
        p.cp_recovery_cycles
        (if i = List.length r.r_points - 1 then "" else ","))
    r.r_points;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"journal_overhead\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"ops\": %d, \"plain_cycles_per_op\": %.1f, \
         \"jfs_cycles_per_op\": %.1f, \"overhead_pct\": %.1f, \
         \"plain_disk_writes\": %d, \"jfs_disk_writes\": %d, \
         \"journal_records\": %d }%s\n"
        p.ov_ops p.ov_plain_cycles_per_op p.ov_jfs_cycles_per_op
        (if p.ov_plain_cycles_per_op > 0.0 then
           (p.ov_jfs_cycles_per_op -. p.ov_plain_cycles_per_op)
           /. p.ov_plain_cycles_per_op *. 100.0
         else 0.0)
        p.ov_plain_disk_writes p.ov_jfs_disk_writes p.ov_journal_records
        (if i = List.length r.r_overhead - 1 then "" else ","))
    r.r_overhead;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"recovery_latency\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"ops\": %d, \"journal_records\": %d, \"replayed_txns\": %d, \
         \"replayed_blocks\": %d, \"recovery_cycles\": %d }%s\n"
        p.lt_ops p.lt_journal_records p.lt_replayed_txns p.lt_replayed_blocks
        p.lt_recovery_cycles
        (if i = List.length r.r_latency - 1 then "" else ","))
    r.r_latency;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
