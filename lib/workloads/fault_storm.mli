(** The fault-storm experiment: availability under live fault injection.

    Five scenarios measure what the reincarnation service buys when
    components die {e under load} — the availability counterpart to
    {!Fault_sweep}'s completion-rate curve:

    - {b shard-golden}: an open-loop deterministic UDP storm while one
      netserver protocol shard is killed and reincarnated mid-run.
      Injection is scheduled on the event timeline before any packet
      flies, so the untouched shards must deliver {e exactly} the packet
      counts of a no-fault control run, and the victim's shortfall must
      equal the counted in-flight reboot drops.
    - {b shard-storm}: closed-loop acked echo operations from one victim
      client per CPU while the shard homing a victim socket is killed and
      reincarnated twice; acked ops must never be lost (clients re-drive
      dropped traffic through retry budgets), and the kill→repair windows
      give availability-under-fault and shard MTTR.
    - {b fs-crash}: the E1-style edit workload against a
      health-supervised file server under random crash injection plus
      disk write-reordering; MTTR is the supervisor's death-to-rebind.
    - {b fs-wedge}: scripted [Wedge_server] faults stick the serve loop
      mid-request with the port still alive — only the heartbeat
      watchdog can see it; detection, kill and restart must happen while
      clients keep completing.
    - {b crash-loop}: a server whose every incarnation dies at once
      burns its restart budget, is demoted to degraded mode, and clients
      resolving its name must get [Kern_unavailable] back fast (the
      fast-fail latency is the measurement) instead of hanging.

    Availability is a success ratio by {e operation finish time}: ops
    completing inside a fault window (kill→repair for shards,
    restart-closure span for the file server) versus outside. *)

type point = {
  fp_scenario : string;
  fp_ops : int;  (** operations attempted (or packets injected) *)
  fp_completed : int;
  fp_lost : int;  (** attempted ops that never completed: must be 0 *)
  fp_in_ops : int;  (** ops finishing inside a fault window *)
  fp_in_ok : int;
  fp_out_ops : int;
  fp_out_ok : int;
  fp_avail_in : float;  (** success ratio inside fault windows *)
  fp_avail_out : float;
  fp_rate_in : float;  (** successful ops per Mcycle inside windows *)
  fp_rate_out : float;
  fp_windows : int;  (** fault windows injected *)
  fp_mttr : float;  (** mean time to repair, cycles (0 when n/a) *)
  fp_restarts : int;
  fp_wedge_kills : int;
  fp_degraded : int;
  fp_reboot_drops : int;  (** in-flight packets lost to shard reboots *)
  fp_reincarnations : int;
  fp_golden_ok : bool;  (** untouched shards identical to the control run *)
  fp_fastfail_cycles : int;  (** degraded-mode error latency (-1 = n/a) *)
}

type result = {
  fr_seed : int;
  fr_points : point list;
  fr_check : Check.report option;  (** Machcheck findings, when enabled *)
}

val run :
  ?seed:int -> ?endpoints:int -> ?rounds:int -> ?victim_ops:int ->
  ?clients:int -> ?sessions:int -> ?checks:bool -> unit -> result
(** Run all five scenarios.  [endpoints]/[rounds] size the open-loop
    golden storm, [victim_ops] the closed-loop echo run, and
    [clients]/[sessions] the file-server scenarios.  With [checks] a
    {!Check} rides along globally (every boot and every supervised
    restart attaches to it). *)

(** {1 Acceptance probes (the bench gates)} *)

val find : result -> scenario:string -> point option

val total_lost : result -> int
(** Acked/attempted operations lost across all scenarios — the
    zero-acked-loss gate. *)

val min_availability : result -> float
(** Worst success ratio over every scenario's in-window and out-of-window
    populations (1.0 when a population is empty). *)

val golden_ok : result -> bool
(** All golden asserts held: untouched shards byte-identical to the
    control run, victim shortfall exactly the counted drops, and the
    fault run actually dropped something. *)

val degraded_fastfail : result -> int
(** The crash-loop scenario's fast-fail latency in cycles, or -1 if the
    server never demoted or the client never saw [Kern_unavailable]. *)

val to_json : result -> string
