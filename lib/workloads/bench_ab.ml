(* A/B regression diff over two BENCH_*.json files.

   Flattens both documents to (path, number) pairs, pairs them up, and
   judges each delta by the metric's direction: names that look like
   throughput/speedup regress when they fall, cost-like names (cycles,
   misses, stalls...) regress when they rise, anything else is reported
   but never gates.  Host-time and provenance fields are skipped — only
   deterministic simulated metrics can fail a build.

   The two files must carry the same "experiment" and "schema_version";
   comparing apples to oranges is an error, not a zero diff. *)

module Json = Ipc_stress.Json

type delta = {
  d_path : string;
  d_a : float;
  d_b : float;
  d_change : float;  (* (b - a) / a; +inf when a = 0 and b <> 0 *)
  d_direction : [ `Higher_better | `Lower_better | `Neutral ];
  d_regression : bool;
}

type verdict = {
  v_experiment : string;
  v_threshold : float;
  v_compared : int;  (* numeric leaves present in both files *)
  v_only_a : int;  (* leaves present in A but missing from B *)
  v_only_b : int;
  v_deltas : delta list;  (* changed leaves only, worst first *)
  v_regressions : int;
}

(* Provenance and host-time noise: never compared. *)
let skipped_subtree = function "run" -> true | _ -> false

let skipped_leaf path =
  let has sub =
    let n = String.length path and m = String.length sub in
    let rec go i = i + m <= n && (String.sub path i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  has "host_ns" || has "timestamp" || has "git_rev" || has "seed"

let direction path =
  let has sub =
    let n = String.length path and m = String.length sub in
    let rec go i = i + m <= n && (String.sub path i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  if
    has "throughput" || has "speedup" || has "completed" || has "hits"
    || has "hit_rate"
  then `Higher_better
  else if
    has "cycles" || has "miss" || has "stall" || has "retries" || has "lost"
    || has "torn" || has "findings" || has "residual" || has "gave_up"
  then `Lower_better
  else `Neutral

(* Flatten to leaf paths.  Array elements are keyed by index, except
   arrays of objects that carry identifying fields (system/bytes,
   workload/placement/ncpus...), which are keyed by those values so a
   reordered results array still lines up. *)
let flatten json =
  let id_key fields =
    let pick k =
      match List.assoc_opt k fields with
      | Some (Json.Str s) -> Some s
      | Some (Json.Num x) -> Some (Printf.sprintf "%g" x)
      | _ -> None
    in
    let parts =
      List.filter_map pick
        [ "system"; "workload"; "phase"; "scenario"; "placement"; "ncpus";
          "bytes"; "crash_ppm"; "write"; "ops" ]
    in
    if parts = [] then None else Some (String.concat "/" parts)
  in
  let acc = ref [] in
  let rec go path = function
    | Json.Num x -> if not (skipped_leaf path) then acc := (path, x) :: !acc
    | Json.Bool bv ->
        if not (skipped_leaf path) then
          acc := (path, if bv then 1.0 else 0.0) :: !acc
    | Json.Str _ | Json.Null -> ()
    | Json.Obj fields ->
        List.iter
          (fun (k, v) ->
            if not (skipped_subtree k) then
              go (if path = "" then k else path ^ "." ^ k) v)
          fields
    | Json.Arr items ->
        List.iteri
          (fun i v ->
            let key =
              match v with
              | Json.Obj fields -> (
                  match id_key fields with
                  | Some id -> Printf.sprintf "%s[%s]" path id
                  | None -> Printf.sprintf "%s[%d]" path i)
              | _ -> Printf.sprintf "%s[%d]" path i
            in
            go key v)
          items
  in
  go "" json;
  List.rev !acc

let str_member key json =
  match Json.member key json with Some (Json.Str s) -> Some s | _ -> None

let num_member key json =
  match Json.member key json with Some (Json.Num x) -> Some x | _ -> None

let compare_json ~a ~b ~threshold =
  match (Json.parse a, Json.parse b) with
  | Error e, _ -> Error (Printf.sprintf "A: invalid JSON: %s" e)
  | _, Error e -> Error (Printf.sprintf "B: invalid JSON: %s" e)
  | Ok ja, Ok jb -> (
      match (str_member "experiment" ja, str_member "experiment" jb) with
      | None, _ | _, None -> Error "missing \"experiment\" field"
      | Some ea, Some eb when ea <> eb ->
          Error (Printf.sprintf "experiment mismatch: %S vs %S" ea eb)
      | Some experiment, _ -> (
          match (num_member "schema_version" ja, num_member "schema_version" jb)
          with
          | None, _ | _, None -> Error "missing \"schema_version\" field"
          | Some va, Some vb when va <> vb ->
              Error
                (Printf.sprintf "schema_version mismatch: %g vs %g" va vb)
          | Some _, _ ->
              let fa = flatten ja and fb = flatten jb in
              let tb = Hashtbl.create 64 in
              List.iter (fun (k, v) -> Hashtbl.replace tb k v) fb;
              let compared = ref 0 and only_a = ref 0 in
              let deltas = ref [] in
              List.iter
                (fun (path, va) ->
                  match Hashtbl.find_opt tb path with
                  | None -> incr only_a
                  | Some vb ->
                      incr compared;
                      Hashtbl.remove tb path;
                      if va <> vb then begin
                        let change =
                          if va = 0.0 then
                            if vb > 0.0 then infinity else neg_infinity
                          else (vb -. va) /. Float.abs va
                        in
                        let dir = direction path in
                        let regression =
                          match dir with
                          | `Higher_better -> change < -.threshold
                          | `Lower_better -> change > threshold
                          | `Neutral -> false
                        in
                        deltas :=
                          {
                            d_path = path;
                            d_a = va;
                            d_b = vb;
                            d_change = change;
                            d_direction = dir;
                            d_regression = regression;
                          }
                          :: !deltas
                      end)
                fa;
              let only_b = Hashtbl.length tb in
              let deltas =
                List.sort
                  (fun x y ->
                    match (y.d_regression, x.d_regression) with
                    | true, false -> 1
                    | false, true -> -1
                    | _ ->
                        compare
                          (Float.abs y.d_change)
                          (Float.abs x.d_change))
                  !deltas
              in
              Ok
                {
                  v_experiment = experiment;
                  v_threshold = threshold;
                  v_compared = !compared;
                  v_only_a = !only_a;
                  v_only_b = only_b;
                  v_deltas = deltas;
                  v_regressions =
                    List.length (List.filter (fun d -> d.d_regression) deltas);
                }))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compare_files ~a ~b ~threshold =
  match (read_file a, read_file b) with
  | exception Sys_error e -> Error e
  | sa, sb -> compare_json ~a:sa ~b:sb ~threshold

let pp_verdict ppf v =
  Format.fprintf ppf
    "experiment %s: %d metrics compared (%d only in A, %d only in B), \
     threshold %.1f%%@\n"
    v.v_experiment v.v_compared v.v_only_a v.v_only_b (v.v_threshold *. 100.0);
  if v.v_deltas = [] then Format.fprintf ppf "no metric changed@\n"
  else begin
    Format.fprintf ppf "%-52s %14s %14s %9s@\n" "metric" "A" "B" "change";
    List.iter
      (fun d ->
        Format.fprintf ppf "%-52s %14.1f %14.1f %8.1f%%%s@\n" d.d_path d.d_a
          d.d_b (d.d_change *. 100.0)
          (if d.d_regression then "  << REGRESSION"
           else
             match d.d_direction with
             | `Neutral -> "  (not gated)"
             | `Higher_better | `Lower_better -> ""))
      v.v_deltas
  end;
  Format.fprintf ppf "regressions: %d@\n" v.v_regressions
