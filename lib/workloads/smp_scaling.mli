(** The smp-scaling experiment: throughput-vs-cores curves.

    Drives the ipc-stress round-trip engine (three placement policies:
    colocated pairs, crossed pairs, everything-on-CPU-0 with work
    stealing) and the E1-style file-server edit workload at 1/2/4/8
    simulated CPUs, and reports aggregate throughput, speedup against
    the 1-CPU anchor, and the SMP cost counters (IPIs, scheduler
    messages, steals, coherence misses, bus stalls). *)

type placement = Colocated | Crossed | Unbalanced

type point = {
  sp_workload : string;  (** ["ipc"] or ["fileserver"] *)
  sp_placement : string;
  sp_ncpus : int;
  sp_ops : int;
  sp_wall_cycles : int;  (** furthest-ahead CPU clock at completion *)
  sp_throughput : float;  (** ops per million cycles of wall clock *)
  sp_speedup : float;  (** vs the 1-CPU point of the same series *)
  sp_ipis : int;
  sp_xmsgs : int;  (** cross-CPU scheduler messages delivered *)
  sp_steals : int;
  sp_coherence_misses : int;
  sp_bus_stall_cycles : int;
  sp_bus_transactions : int;
}

type result = {
  r_cpus : int list;
  r_pairs : int;
  r_iters : int;
  r_bytes : int;
  r_clients : int;
  r_sessions : int;
  r_points : point list;
  r_state : Machine.Footprint.machine_state list;
      (** per-CPU machine-state bytes at each CPU count (density) *)
  r_check : Check.report option;
}

val run :
  ?cpus:int list -> ?pairs:int -> ?iters:int -> ?bytes:int -> ?clients:int ->
  ?sessions:int -> ?checks:bool -> unit -> result
(** Defaults: CPUs [1;2;4;8], 8 pairs x 150 round trips of 512 bytes,
    6 clients x 4 edit sessions.  [~checks:true] runs the whole sweep
    under Machcheck (globally installed for the duration). *)

val ipc_speedup : result -> ncpus:int -> float
(** Colocated-ipc throughput at [ncpus] relative to 1 CPU — the headline
    scaling number. *)

val to_json : result -> string
