(** The net-storm experiment: a C1M-flavoured traffic generator against
    the netisr-sharded netserver, swept over CPU counts.

    Five phases, each booting a fresh machine per (phase, ncpus) point:
    [steady] (uniform datagram firehose from tens of thousands of
    simulated clients — the packets/sec scaling anchor), [skew] (the
    same engine under Zipf heavy-hitter endpoint selection, measuring
    per-shard occupancy fairness and p50/p99 delivery latency), [churn]
    (full TCP open/echo/close sessions — connections/sec), and two
    adversarial fault phases at the largest swept CPU count: [synflood]
    (SYN storm against a bounded backlog while UDP victims complete
    acknowledged operations over a lossy {!Mach.Fault} wire) and
    [slowloris] (waves of half-open connections vs the periodic embryo
    reaper, with TCP victims completing through the same listener).

    All randomness is a seeded LCG: results are deterministic. *)

type point = {
  np_phase : string;  (* steady | skew | churn | synflood | slowloris *)
  np_ncpus : int;
  np_clients : int;  (* distinct simulated client source ports *)
  np_ops : int;  (* packets delivered, or sessions/ops completed *)
  np_wall_cycles : int;
  np_throughput : float;  (* ops per million cycles of wall clock *)
  np_speedup : float;  (* vs the 1-CPU point of the same phase *)
  np_conns : int;  (* TCP connections opened *)
  np_p50_cycles : int;  (* busiest shard's rx-ring-entry -> delivery *)
  np_p99_cycles : int;  (* latency percentiles, home-CPU cycles *)
  np_fairness : float;  (* per-shard occupancy max/mean (1.0 = perfect) *)
  np_syn_drops : int;  (* SYNs refused by backlog backpressure *)
  np_wire_drops : int;  (* packets lost to injected faults *)
  np_reaped : int;  (* half-open embryos closed by the reaper *)
  np_half_open_peak : int;  (* worst half-open population observed *)
  np_retries : int;  (* victim operation retries *)
  np_lost_acked : int;  (* acked ops that never completed: must be 0 *)
  np_xshard_msgs : int;  (* registry messages + cross-shard accepts *)
}

type result = {
  nr_cpus : int list;
  nr_endpoints : int;
  nr_clients : int;
  nr_packets : int;
  nr_bytes : int;
  nr_sessions : int;
  nr_flood_syns : int;
  nr_points : point list;
  nr_check : Check.report option;  (* Machcheck findings, when enabled *)
}

val run :
  ?cpus:int list ->
  ?endpoints:int ->
  ?clients:int ->
  ?packets:int ->
  ?bytes:int ->
  ?sessions:int ->
  ?flood_syns:int ->
  ?victim_ops:int ->
  ?checks:bool ->
  unit ->
  result
(** Defaults: cpus [1;2;4;8], 32 endpoints, 20_000 clients, 12_000
    packets per firehose point, 512-byte payloads, 24 sessions per CPU,
    200 flood SYNs, 12 victim ops per CPU. *)

val steady_speedup : result -> ncpus:int -> float
(** Steady-phase packets/sec at [ncpus] relative to 1 CPU — the
    headline acceptance number (>= 2.5 at 4 CPUs). *)

val skew_tail_ratio : result -> float
(** Worst p99/p50 delivery-latency ratio over the skewed multi-CPU
    points (acceptance: <= 3). *)

val total_lost : result -> int
(** Acknowledged operations lost across every phase (acceptance: 0). *)

val phase_point : result -> phase:string -> ncpus:int -> point option
val to_json : result -> string
(** The BENCH_net.json payload (standard provenance envelope). *)
