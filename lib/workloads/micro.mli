(** Microbenchmarks: Table 2 (trap vs RPC), the message-passing
    improvement sweep (E3) and the file-server factor (E5). *)

type table2_row = {
  t2_label : string;
  t2_instructions : float;
  t2_cycles : float;
  t2_bus_cycles : float;
  t2_cpi : float;
}

val table2 : ?iters:int -> unit -> table2_row * table2_row
(** [(thread_self, rpc32)] per-operation counter readings on the Pentium
    machine, measured warm exactly as the paper programmed the counter
    hardware. *)

type sweep_point = {
  sw_bytes : int;
  sw_mach_ipc_cycles : float;  (** Mach 3.0 [mach_msg] round trip *)
  sw_ibm_rpc_cycles : float;  (** the rework *)
  sw_improvement : float;
  sw_reply_hits : int;  (** reply-port cache hits on the Mach side *)
  sw_reply_misses : int;
}

val ipc_sweep : ?iters:int -> sizes:int list -> unit -> sweep_point list
(** Round-trip cost by message size through both implementations;
    messages above {!ool_threshold} move their data out of line
    (virtual copy + touch for Mach, by-reference physical copy for the
    rework). *)

val ool_threshold : int

type factor = {
  fx_rpc_cycles_per_op : float;  (** multi-server: file server over RPC *)
  fx_trap_cycles_per_op : float;  (** monolithic: in-kernel file system *)
  fx_factor : float;
}

val fileserver_factor : ?ops:int -> unit -> factor
(** The same warm open/read/write/close mix against the user-level file
    server and against the identical code in-kernel. *)
