(* The fault-storm experiment: availability under live fault injection.

   Five scenarios, each booting a fresh machine, each measuring how much
   service survives while a component is killed, wedged or crash-looped
   under load — the reincarnation-service counterpart to fault-sweep's
   completion-rate curve:

   - [shard-golden]: an open-loop deterministic UDP storm over a sharded
     netserver while one protocol shard is killed and reincarnated
     mid-run.  Because injection is blind to server state, the untouched
     shards must process *exactly* the packet counts of a no-fault
     control run (the golden assert), and the victim's shortfall must
     equal the counted reboot drops.
   - [shard-storm]: closed-loop acknowledged echo operations from one
     victim client per CPU while the shard homing a victim's socket is
     killed and reincarnated twice.  Acked ops are never lost — clients
     re-drive dropped traffic through their retry budgets — and the
     fault windows give per-window availability and shard MTTR.
   - [fs-crash]: the E1-style edit workload against a health-supervised
     file server under random crash injection plus disk write-reorder
     faults; the supervisor's dead-name path restarts it and MTTR is
     death-to-rebind.
   - [fs-wedge]: scripted [Wedge_server] faults stick the file server's
     serve loop mid-request; the port stays alive, so only the
     supervisor's heartbeat watchdog can see it.  Detection, kill and
     restart must happen while clients keep completing.
   - [crash-loop]: a server whose every incarnation dies immediately
     burns its restart budget and is demoted to degraded mode; a client
     resolving the name must get [Kern_unavailable] back fast — the
     fast-fail latency is the measurement — instead of hanging.

   All randomness is the seeded fault plan plus a seeded LCG: every
   number is deterministic. *)

open Mach.Ktypes
module F = Fileserver

type point = {
  fp_scenario : string;
  fp_ops : int;  (* operations attempted (or packets injected) *)
  fp_completed : int;
  fp_lost : int;  (* acked/attempted ops that never completed: must be 0 *)
  fp_in_ops : int;  (* ops finishing inside a fault window *)
  fp_in_ok : int;
  fp_out_ops : int;
  fp_out_ok : int;
  fp_avail_in : float;  (* success ratio inside fault windows *)
  fp_avail_out : float;
  fp_rate_in : float;  (* successful ops per Mcycle inside windows *)
  fp_rate_out : float;
  fp_windows : int;  (* fault windows injected *)
  fp_mttr : float;  (* mean time to repair, cycles (0 when n/a) *)
  fp_restarts : int;
  fp_wedge_kills : int;
  fp_degraded : int;
  fp_reboot_drops : int;  (* in-flight packets lost to shard reboots *)
  fp_reincarnations : int;
  fp_golden_ok : bool;  (* untouched shards identical to the control run *)
  fp_fastfail_cycles : int;  (* degraded-mode error latency (-1 = n/a) *)
}

type result = {
  fr_seed : int;
  fr_points : point list;
  fr_check : Check.report option;
}

let base scenario =
  {
    fp_scenario = scenario;
    fp_ops = 0;
    fp_completed = 0;
    fp_lost = 0;
    fp_in_ops = 0;
    fp_in_ok = 0;
    fp_out_ops = 0;
    fp_out_ok = 0;
    fp_avail_in = 1.0;
    fp_avail_out = 1.0;
    fp_rate_in = 0.0;
    fp_rate_out = 0.0;
    fp_windows = 0;
    fp_mttr = 0.0;
    fp_restarts = 0;
    fp_wedge_kills = 0;
    fp_degraded = 0;
    fp_reboot_drops = 0;
    fp_reincarnations = 0;
    fp_golden_ok = true;
    fp_fastfail_cycles = -1;
  }

let config ~ncpus =
  Machine.Config.with_ncpus Machine.Config.pentium_133 ~n:ncpus

let lcg s = ((s * 1103515245) + 12345) land 0x3fffffff

(* --- op ledger: completion-stamped outcomes vs fault windows -------------- *)

type ledger = { mutable lg : (int * bool) list }

let ledger () = { lg = [] }
let note l ~at ok = l.lg <- (at, ok) :: l.lg

let classify l windows =
  let inside at = List.exists (fun (a, b) -> at >= a && at <= b) windows in
  List.fold_left
    (fun (iop, iok, oop, ook) (at, ok) ->
      if inside at then
        (iop + 1, (if ok then iok + 1 else iok), oop, ook)
      else (iop, iok, oop + 1, if ok then ook + 1 else ook))
    (0, 0, 0, 0) l.lg

let ratio ok total = if total = 0 then 1.0 else float_of_int ok /. float_of_int total

let window_cycles windows =
  List.fold_left (fun acc (a, b) -> acc + max 0 (b - a)) 0 windows

let mean_window windows =
  match windows with
  | [] -> 0.0
  | ws -> float_of_int (window_cycles ws) /. float_of_int (List.length ws)

let per_mcycle ops cycles =
  if cycles <= 0 then 0.0 else float_of_int ops /. float_of_int cycles *. 1e6

(* Fill the availability block of a point from a ledger + windows. *)
let with_availability p l windows ~wall =
  let iop, iok, oop, ook = classify l windows in
  let wsum = window_cycles windows in
  {
    p with
    fp_in_ops = iop;
    fp_in_ok = iok;
    fp_out_ops = oop;
    fp_out_ok = ook;
    fp_avail_in = ratio iok iop;
    fp_avail_out = ratio ook oop;
    fp_rate_in = per_mcycle iok wsum;
    fp_rate_out = per_mcycle ook (max 0 (wall - wsum));
    fp_windows = List.length windows;
    fp_mttr = mean_window windows;
  }

let spawn_on k task name ~cpu body =
  ignore
    (Mach.Kernel.thread_spawn k task ~name ~affinity:cpu ~bound:true body
      : thread)

let sleep sys cycles =
  ignore (Mach.Clock.sleep_for sys ~cycles : kern_return)

(* Poll for an echo reply with a bounded budget, draining duplicates left
   by earlier retries of the same operation. *)
let poll_reply sys net s ~polls ~gap =
  let rec go n =
    match Netserver.try_recv net s with
    | Some _ ->
        let rec drain () =
          match Netserver.try_recv net s with
          | Some _ -> drain ()
          | None -> ()
        in
        drain ();
        true
    | None ->
        if n = 0 then false
        else begin
          sleep sys gap;
          go (n - 1)
        end
  in
  go polls

(* --- shard-golden: open-loop storm, untouched shards byte-identical ------- *)

(* One run of the open-loop storm.  The injection schedule is fixed on
   the event timeline before any packet flies, so it is identical with
   and without the mid-run kill; the killer thread exists in both runs
   (bound to the victim shard's CPU, so its cycles land there and only
   there) and merely declines to kill in the control run. *)
let golden_run ~ncpus ~endpoints ~rounds ~kill () =
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let victim = Netserver.port_shard net ~port:100 in
  let gap = 8_000 in
  let task = Mach.Kernel.task_create k ~name:"storm" () in
  let windows = ref [] in
  let schedule at f = Machine.Event_queue.schedule m.Machine.events ~at f in
  let inject_round r =
    for e = 0 to endpoints - 1 do
      let src = 10_000 + (lcg ((r * 131) + e) mod 5_000) in
      Netserver.inject_udp net ~src_port:src ~dst_port:(100 + e) ~bytes:256
    done
  in
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"binder" (fun () ->
         for e = 0 to endpoints - 1 do
           match Netserver.udp_socket net ~port:(100 + e) with
           | Error err -> failwith err
           | Ok _ -> ()
         done;
         let t0 = Machine.now m + 2_000 in
         for r = 0 to rounds - 1 do
           schedule (t0 + (r * gap)) (fun () -> inject_round r)
         done)
      : thread);
  spawn_on k task "killer" ~cpu:(victim mod ncpus) (fun () ->
      sleep sys (12 * gap);
      if kill then begin
        let d0 = Machine.global_now m in
        Netserver.kill_shard net ~shard:victim;
        sleep sys (10 * gap);
        Netserver.reincarnate_shard net ~shard:victim;
        windows := (d0, Machine.global_now m) :: !windows
      end
      else sleep sys (10 * gap));
  Mach.Kernel.run k;
  (net, victim, !windows)

let shard_golden ~endpoints ~rounds () =
  let ncpus = 4 in
  let netc, victim, _ = golden_run ~ncpus ~endpoints ~rounds ~kill:false () in
  let netf, victim', windows = golden_run ~ncpus ~endpoints ~rounds ~kill:true () in
  assert (victim = victim');
  let dc = Netserver.shard_delivered netc in
  let df = Netserver.shard_delivered netf in
  let drops = Netserver.reboot_drops netf in
  let golden = ref (drops > 0) in
  Array.iteri (fun i d -> if i <> victim && d <> dc.(i) then golden := false) df;
  (* the victim's shortfall is exactly the counted reboot drops *)
  if df.(victim) + drops <> dc.(victim) then golden := false;
  let total = Array.fold_left ( + ) 0 df in
  {
    (base "shard-golden") with
    fp_ops = rounds * endpoints;
    fp_completed = total;
    fp_lost = 0;  (* open loop: drops are expected, acked ops don't exist *)
    fp_windows = List.length windows;
    fp_mttr = mean_window windows;
    fp_reboot_drops = drops;
    fp_reincarnations = Netserver.shard_reincarnations netf;
    fp_golden_ok = !golden;
  }

(* --- shard-storm: closed-loop acked ops across shard micro-reboots -------- *)

let shard_storm ~victim_ops () =
  let ncpus = 4 in
  let m = Machine.create (config ~ncpus) in
  let k = Mach.Kernel.boot m in
  let sys = k.Mach.Kernel.sys in
  let net = Netserver.create k ~style:Finegrain.Coarse in
  let echo_home = Netserver.port_shard net ~port:7 in
  let vport cpu = 20_000 + cpu in
  (* kill the shard homing a victim's receive socket — never the echo
     server's, so the service itself stays up and only that victim's
     replies vanish while the shard is down *)
  let victim =
    let rec pick cpu =
      if cpu >= ncpus then (echo_home + 1) mod ncpus
      else
        let sh = Netserver.port_shard net ~port:(vport cpu) in
        if sh <> echo_home then sh else pick (cpu + 1)
    in
    pick 0
  in
  let task = Mach.Kernel.task_create k ~name:"storm" () in
  let lg = ledger () in
  let windows = ref [] in
  let lost = ref 0 and completed = ref 0 in
  spawn_on k task "echo" ~cpu:0 (fun () ->
      match Netserver.udp_socket net ~port:7 with
      | Error e -> failwith e
      | Ok s ->
          let rec serve () =
            let src, n = Netserver.udp_recv net s in
            Netserver.udp_send net s ~dst_port:src ~bytes:n;
            serve ()
          in
          serve ());
  spawn_on k task "killer" ~cpu:(victim mod ncpus) (fun () ->
      sleep sys 40_000;
      for _ = 1 to 2 do
        let d0 = Machine.global_now m in
        Netserver.kill_shard net ~shard:victim;
        sleep sys 50_000;
        Netserver.reincarnate_shard net ~shard:victim;
        windows := (d0, Machine.global_now m) :: !windows;
        sleep sys 80_000
      done);
  for cpu = 0 to ncpus - 1 do
    spawn_on k task (Printf.sprintf "victim%d" cpu) ~cpu (fun () ->
        sleep sys 2_000;
        match Netserver.udp_socket net ~port:(vport cpu) with
        | Error e -> failwith e
        | Ok s ->
            for _ = 1 to victim_ops do
              let rec attempt budget =
                if budget = 0 then begin
                  incr lost;
                  note lg ~at:(Machine.global_now m) false
                end
                else begin
                  Netserver.udp_send net s ~dst_port:7 ~bytes:160;
                  if poll_reply sys net s ~polls:12 ~gap:6_000 then begin
                    incr completed;
                    note lg ~at:(Machine.global_now m) true
                  end
                  else attempt (budget - 1)
                end
              in
              attempt 40
            done)
  done;
  Mach.Kernel.run k;
  let ops = victim_ops * ncpus in
  let p =
    {
      (base "shard-storm") with
      fp_ops = ops;
      fp_completed = !completed;
      fp_lost = !lost;
      fp_reboot_drops = Netserver.reboot_drops net;
      fp_reincarnations = Netserver.shard_reincarnations net;
    }
  in
  with_availability p lg !windows ~wall:(Machine.global_now m)

(* --- fs-crash / fs-wedge: the health-supervised file server --------------- *)

let service_path = "/services/file"

let fail_fs e = failwith (F.Fs_types.fs_error_to_string e)

(* One edit session, as fault-sweep runs it: any step may come back
   [E_bad_handle] after a crash-and-restart (the open-file table is
   lost), so the session restarts from the open a bounded number of
   times. *)
let run_session fs sem ~path =
  let ( let* ) r f = match r with Ok x -> f x | Error e -> Error e in
  let once () =
    let* h = F.File_server.Client.open_ fs sem ~path ~create:true () in
    let* _n = F.File_server.Client.write fs h (Bytes.make 256 's') in
    F.File_server.Client.seek fs h ~pos:0;
    let rec reads n =
      if n = 0 then Ok ()
      else
        let* _data = F.File_server.Client.read fs h ~bytes:64 in
        reads (n - 1)
    in
    let* () = reads 4 in
    F.File_server.Client.close fs h;
    F.File_server.Client.sync fs;
    Ok ()
  in
  let rec go tries =
    match once () with
    | Ok () -> true
    | Error _ when tries < 3 -> go (tries + 1)
    | Error _ -> false
  in
  go 0

(* The common chassis: boot, mount, supervise with a heartbeat config,
   run [clients]x[sessions] while [configure] installs the scenario's
   fault plan, and stop the supervisor when the last session lands (the
   heartbeat timer would otherwise keep the machine awake forever). *)
let fs_scenario ~scenario ~seed ~clients ~sessions ~server_threads ~watchdog
    ~configure () =
  let m = Machine.create Machine.Config.pentium_133 in
  let boot = Mk_services.Bootstrap.boot m in
  let k = boot.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let runtime = boot.Mk_services.Bootstrap.runtime in
  let ns = Mk_services.Bootstrap.name_service_exn boot in
  let disk = m.Machine.disk in
  F.Hpfs.mkfs disk ();
  let vfs = F.Vfs.create () in
  let cache = F.Block_cache.create k disk () in
  (match F.Hpfs.mount cache () with
  | Ok pfs -> (
      match F.Vfs.mount vfs ~at:"/os2" pfs with
      | Ok () -> ()
      | Error e -> failwith e)
  | Error e -> fail_fs e);
  let fs = F.File_server.start k runtime vfs ~server_threads () in
  let sup = Mk_services.Supervisor.create k runtime ns in
  Drivers.Disk_driver.arm_faults k disk;
  let plan = Mach.Fault.create ~seed () in
  configure plan ~disk:(Machine.Disk.name disk);
  sys.Mach.Sched.faults <- Some plan;
  let cached = ref (Some (F.File_server.port fs)) in
  let resolve () =
    match !cached with
    | Some p when not p.dead -> Some p
    | Some _ | None ->
        let p = Mk_services.Name_service.resolve_port ns ~path:service_path in
        cached := p;
        p
  in
  F.File_server.set_retry fs ~attempts:7 ~deadline:1_000_000
    ~backoff:1_000_000 ~resolve ();
  let sem = F.Vfs.os2_semantics in
  let lg = ledger () in
  let windows = ref [] in
  let finished = ref 0 in
  let total = clients * sessions in
  let driver = Mach.Kernel.task_create k ~name:"storm-driver" () in
  ignore
    (Mach.Kernel.thread_spawn k driver ~name:"storm-main" (fun () ->
         let health =
           {
             Mk_services.Supervisor.hc_interval = 60_000;
             hc_deadline = 30_000;
             hc_watchdog = watchdog;
             hc_port = (fun () -> Some (F.File_server.health_port fs));
           }
         in
         Mk_services.Supervisor.supervise sup ~path:service_path ~budget:16
           ~window:max_int ~backoff:25_000 ~health
           ~port:(F.File_server.port fs)
           ~restart:(fun () ->
             let t0 = Machine.now m in
             let p = F.File_server.restart fs in
             windows := (t0, Machine.now m) :: !windows;
             p)
           ();
         for c = 1 to clients do
           let client =
             Mach.Kernel.task_create k ~name:(Printf.sprintf "editor%d" c) ()
           in
           ignore
             (Mach.Kernel.thread_spawn k client ~name:"edit" (fun () ->
                  for s = 1 to sessions do
                    let path = Printf.sprintf "/os2/c%d_s%d.dat" c s in
                    let ok = run_session fs sem ~path in
                    note lg ~at:(Machine.global_now m) ok;
                    incr finished
                  done)
               : thread)
         done;
         (* the heartbeat scan keeps the event queue alive, so the run
            only quiesces once the supervisor is told to stand down *)
         while !finished < total do
           sleep sys 50_000
         done;
         Mk_services.Supervisor.stop sup)
      : thread);
  Mach.Kernel.run k;
  sys.Mach.Sched.faults <- None;
  Drivers.Disk_driver.disarm_faults disk;
  let completed = List.length (List.filter snd lg.lg) in
  let p =
    {
      (base scenario) with
      fp_ops = total;
      fp_completed = completed;
      fp_lost = total - completed;
      fp_restarts = Mk_services.Supervisor.path_restarts sup ~path:service_path;
      fp_wedge_kills =
        Mk_services.Supervisor.path_wedge_kills sup ~path:service_path;
      fp_degraded = Mk_services.Supervisor.degraded_count sup;
    }
  in
  let p = with_availability p lg !windows ~wall:(Machine.global_now m) in
  (* prefer the supervisor's own death-to-rebind MTTR when it has one *)
  match Mk_services.Supervisor.mttr sup ~path:service_path with
  | Some c -> { p with fp_mttr = float_of_int c }
  | None -> p

let fs_crash ~seed ~clients ~sessions () =
  fs_scenario ~scenario:"fs-crash" ~seed ~clients ~sessions ~server_threads:2
    ~watchdog:4_000_000
    ~configure:(fun plan ~disk ->
      Mach.Fault.set_rates plan ~port:"file-service" ~crash_ppm:30_000 ();
      Mach.Fault.set_disk_rates plan ~disk ~reorder_ppm:30_000 ())
    ()

let fs_wedge ~seed ~clients ~sessions () =
  fs_scenario ~scenario:"fs-wedge" ~seed ~clients ~sessions ~server_threads:1
    ~watchdog:4_000_000
    ~configure:(fun plan ~disk:_ ->
      (* a scripted wedge far past the watchdog — which itself must sit
         above the slowest legitimate request: a single serve thread
         flushing a recovery-dirtied cache on sync can legitimately hold
         the loop for over a megacycle, and a too-tight watchdog turns
         that into a kill/restart/slow-sync cascade.  The port stays
         alive throughout; only the heartbeat's busy-since stamp betrays
         the wedge. *)
      Mach.Fault.at_request plan ~port:"file-service" ~n:8
        (Mach.Fault.Wedge_server 12_000_000))
    ()

(* --- crash-loop: budget exhaustion, degraded mode, fast-fail -------------- *)

let crash_loop () =
  let m = Machine.create Machine.Config.pentium_133 in
  let boot = Mk_services.Bootstrap.boot m in
  let k = boot.Mk_services.Bootstrap.kernel in
  let sys = k.Mach.Kernel.sys in
  let runtime = boot.Mk_services.Bootstrap.runtime in
  let ns = Mk_services.Bootstrap.name_service_exn boot in
  let sup = Mk_services.Supervisor.create k runtime ns in
  let path = "/services/flaky" in
  let task = Mach.Kernel.task_create k ~name:"flaky" () in
  let make_port () = Mach.Port.allocate sys ~receiver:task ~name:"flaky" in
  let fastfail = ref (-1) in
  let deaths = ref 0 in
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"register" (fun () ->
         let p0 = make_port () in
         Mk_services.Supervisor.supervise sup ~path ~budget:3 ~backoff:2_000
           ~port:p0
           ~restart:(fun () -> make_port ())
           ())
      : thread);
  (* the crash loop itself: every incarnation is murdered moments after
     it appears, until the supervisor gives up and demotes *)
  ignore
    (Mach.Kernel.thread_spawn k task ~name:"crasher" (fun () ->
         sleep sys 5_000;
         let rec crash () =
           if not (Mk_services.Supervisor.is_degraded sup ~path) then begin
             (match Mk_services.Supervisor.current_port sup ~path with
             | Some p when not p.dead ->
                 incr deaths;
                 Mach.Port.destroy sys p
             | Some _ | None -> ());
             sleep sys 4_000;
             crash ()
           end
         in
         crash ())
      : thread);
  let client = Mach.Kernel.task_create k ~name:"client" () in
  ignore
    (Mach.Kernel.thread_spawn k client ~name:"caller" (fun () ->
         while not (Mk_services.Supervisor.is_degraded sup ~path) do
           sleep sys 3_000
         done;
         sleep sys 2_000;
         match Mk_services.Name_service.resolve_port ns ~path with
         | None -> ()
         | Some p -> (
             let t0 = Machine.now m in
             match Mach.Rpc.call sys p (simple_message ~payload:P_unit ()) with
             | Ok { msg_payload = P_error Kern_unavailable; _ } ->
                 fastfail := Machine.now m - t0
             | Ok _ | Error _ -> fastfail := -1))
      : thread);
  Mach.Kernel.run k;
  Mk_services.Supervisor.stop sup;
  {
    (base "crash-loop") with
    fp_ops = !deaths;
    fp_completed = 0;
    fp_restarts = Mk_services.Supervisor.path_restarts sup ~path;
    fp_degraded = Mk_services.Supervisor.degraded_count sup;
    fp_fastfail_cycles = !fastfail;
  }

(* --- sweep ----------------------------------------------------------------- *)

let run ?(seed = 42) ?(endpoints = 16) ?(rounds = 40) ?(victim_ops = 12)
    ?(clients = 3) ?(sessions = 6) ?(checks = false) () =
  let chk = if checks then Some (Check.create ()) else None in
  Option.iter Check.install chk;
  Fun.protect ~finally:(fun () -> if checks then Check.uninstall ())
  @@ fun () ->
  let points =
    [
      shard_golden ~endpoints ~rounds ();
      shard_storm ~victim_ops ();
      fs_crash ~seed ~clients ~sessions ();
      fs_wedge ~seed ~clients ~sessions ();
      crash_loop ();
    ]
  in
  {
    fr_seed = seed;
    fr_points = points;
    fr_check = Option.map Check.report chk;
  }

(* --- acceptance probes ------------------------------------------------------ *)

let find r ~scenario =
  List.find_opt (fun p -> p.fp_scenario = scenario) r.fr_points

let total_lost r =
  List.fold_left (fun acc p -> acc + p.fp_lost) 0 r.fr_points

let min_availability r =
  List.fold_left
    (fun acc p ->
      let acc = if p.fp_in_ops > 0 then min acc p.fp_avail_in else acc in
      if p.fp_out_ops > 0 then min acc p.fp_avail_out else acc)
    1.0 r.fr_points

let golden_ok r = List.for_all (fun p -> p.fp_golden_ok) r.fr_points

let degraded_fastfail r =
  match find r ~scenario:"crash-loop" with
  | Some p when p.fp_degraded > 0 -> p.fp_fastfail_cycles
  | Some _ | None -> -1

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"fault-storm\",\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Printf.bprintf b "  \"run\": %s,\n" (Run_meta.json ~seed:r.fr_seed ());
  Printf.bprintf b "  \"seed\": %d,\n" r.fr_seed;
  (match r.fr_check with
  | None -> ()
  | Some rep -> Printf.bprintf b "  \"machcheck\": %s,\n" (Check.to_json rep));
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i p ->
      Printf.bprintf b
        "    { \"scenario\": %S, \"ops\": %d, \"completed\": %d, \"lost\": %d, \
         \"in_window_ops\": %d, \"in_window_ok\": %d, \"out_window_ops\": %d, \
         \"out_window_ok\": %d, \"availability_in\": %.3f, \
         \"availability_out\": %.3f, \"rate_in_per_mcycle\": %.3f, \
         \"rate_out_per_mcycle\": %.3f, \"fault_windows\": %d, \
         \"mttr_cycles\": %.0f, \"restarts\": %d, \"wedge_kills\": %d, \
         \"degraded\": %d, \"reboot_drops\": %d, \"reincarnations\": %d, \
         \"golden_ok\": %b, \"fastfail_cycles\": %d }%s\n"
        p.fp_scenario p.fp_ops p.fp_completed p.fp_lost p.fp_in_ops p.fp_in_ok
        p.fp_out_ops p.fp_out_ok p.fp_avail_in p.fp_avail_out p.fp_rate_in
        p.fp_rate_out p.fp_windows p.fp_mttr p.fp_restarts p.fp_wedge_kills
        p.fp_degraded p.fp_reboot_drops p.fp_reincarnations p.fp_golden_ok
        p.fp_fastfail_cycles
        (if i = List.length r.fr_points - 1 then "" else ","))
    r.fr_points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
