(** The fault-sweep experiment: the file workload under injected server
    crashes.

    Each point boots a fresh system with the HPFS file server running
    under {!Mk_services.Supervisor} and clients calling through
    {!Mach.Rpc.call_retry} with name-service re-resolution, then drives
    edit sessions while a seeded {!Mach.Fault} plan crashes the server
    at a parts-per-million rate per request.  Reported per point:
    completion rate, retries, re-opens, supervisor restarts, and cycles
    per operation against the zero-fault baseline — the measured cost of
    surviving a crashy server. *)

type point = {
  p_crash_ppm : int;
  p_ops : int;
  p_completed : int;
  p_retries : int;
  p_reopens : int;
  p_restarts : int;
  p_gave_up : bool;
  p_injected_crashes : int;
  p_disk_faults : int;
      (** injected disk-level faults (write reordering at the same ppm
          rate as server crashes) *)
  p_cycles_per_op : float;
}

type result = {
  r_seed : int;
  r_clients : int;
  r_sessions : int;
  r_baseline_cycles_per_op : float;
  r_points : point list;
  r_check : Check.report option;
      (** Machcheck report over the whole sweep when run with
          [~checks:true]; [None] otherwise *)
}

val run :
  ?seed:int -> ?clients:int -> ?sessions:int -> ?rates:int list ->
  ?checks:bool -> unit -> result
(** Run the baseline plus one point per crash rate (ppm per request;
    default [[2_000; 10_000; 30_000]]).  [~checks:true] runs the whole
    sweep — including every supervised restart — under Machcheck and
    fills [r_check]. *)

val to_json : result -> string
(** Machine-readable form, written to [BENCH_faults.json] by the bench
    runner. *)
