(** Sustained IPC throughput under load: [workers] concurrent
    client/server pairs hammering round trips through both transports
    (Mach 3.0 [mach_msg] and the IBM RPC rework) at several payload
    sizes, reporting simulated cycles per operation alongside host
    nanoseconds per operation, plus the reply-port-cache and kernel
    message-buffer statistics the run generated. *)

type point = {
  pt_system : string;
      (** ["mach_msg"], ["ibm_rpc"], or — at page-sized payloads — the
          copy-vs-remap comparison pair ["rpc_copy"] / ["rpc_remap"]
          (same transport with the out-of-line transfer pinned to the
          physical-copy or page-remap path respectively) *)
  pt_bytes : int;
  pt_sim_cycles_per_op : float;
  pt_host_ns_per_op : float;
}

type result = {
  r_workers : int;
  r_iters : int;  (** round trips per worker pair per point *)
  r_points : point list;
  r_reply_hits : int;  (** reply-port cache hits, summed over runs *)
  r_reply_misses : int;
  r_kbuf_allocs : int;  (** kernel msg-buffer stats, summed over runs *)
  r_kbuf_frees : int;
  r_kbuf_recycles : int;
  r_kbuf_resets : int;  (** whole-arena exhaustion resets, summed *)
  r_kbuf_peak_bytes : int;  (** max peak across runs *)
  r_check : Check.report option;
      (** Machcheck report over the whole sweep when run with
          [~checks:true]; [None] otherwise *)
}

val default_sizes : int list
(** [[0; 32; 512; 4096; 16384; 65536]] *)

val run :
  ?workers:int -> ?iters:int -> ?sizes:int list -> ?checks:bool -> unit ->
  result
(** Defaults: 4 worker pairs, 200 round trips each, {!default_sizes}.
    [~checks:true] runs the whole sweep under Machcheck (globally
    installed for the duration, so every booted machine attaches) and
    fills [r_check].
    @raise Invalid_argument on an empty size list. *)

val to_json : result -> string
(** The machine-readable form written to [BENCH_ipc.json]. *)

(** Minimal JSON reader used to validate emitted results (the repo has
    no JSON dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) Stdlib.result
  val member : string -> t -> t option
end
