(** Workload generators for every experiment: the Table 1 application
    benchmarks, the Table 2 counter probe, the message-size sweep and the
    file-server factor microbenchmarks, all written against the
    system-neutral {!Api}. *)

module Api = Api
module Table1 = Table1
module Micro = Micro
module Ipc_stress = Ipc_stress
module Fault_sweep = Fault_sweep
module Recovery_sweep = Recovery_sweep
module Smp_scaling = Smp_scaling
module Vfs_walk = Vfs_walk
module Net_storm = Net_storm
module Fault_storm = Fault_storm
module Bench_ab = Bench_ab
module Run_meta = Run_meta
