(* Machcheck: rights / deadlock / buffer-lifetime shadow analysis.

   Pure host-side bookkeeping keyed on (space, id) integers so the mach
   library can depend on this one without a cycle.  See check.mli for
   the model. *)

type right = R_receive | R_send | R_send_once

let right_rank = function R_receive -> 3 | R_send -> 2 | R_send_once -> 1

let right_name = function
  | R_receive -> "receive"
  | R_send -> "send"
  | R_send_once -> "send-once"

type finding = { f_checker : string; f_kind : string; f_detail : string }

type report = {
  rep_spaces : int;
  rep_right_transitions : int;
  rep_live_rights : int;
  rep_leaked_rights : int;
  rep_right_double_frees : int;
  rep_right_downgrades : int;
  rep_teardown_residual : int;
  rep_blocks_tracked : int;
  rep_wait_cycles : int;
  rep_buf_shadowed : int;
  rep_buf_double_releases : int;
  rep_buf_use_after_release : int;
  rep_remap_moves : int;
  rep_double_moves : int;
  rep_write_after_move : int;
  rep_mapout_evictions : int;
  rep_crash_points : int;
  rep_lost_writes : int;
  rep_torn_states : int;
  rep_vnodes_shadowed : int;
  rep_vnode_ref_underflows : int;
  rep_vnode_use_after_reclaim : int;
  rep_vnode_leaks : int;
  rep_ncache_shadowed : int;
  rep_ncache_stale : int;
  rep_net_sockets : int;
  rep_net_touches : int;
  rep_net_crossings : int;
  rep_reinc_kills : int;
  rep_reinc_reboots : int;
  rep_reinc_orphans : int;
  rep_reinc_stale : int;
  rep_reinc_residue : int;
  rep_reinc_budget_exhausted : int;
  rep_findings : finding list;
}

(* One shadow right entry: task [task] in space [space] holds [ce_refs]
   references of [ce_right] to port [port]. *)
type centry = {
  mutable ce_right : right;
  mutable ce_refs : int;
  ce_tname : string;
  ce_pname : string;
}

type blocked = {
  b_tname : string;
  b_res : string;
  b_rdesc : string;
  mutable b_holders : int list;
  b_cpu : int;  (* CPU the thread blocked on; -1 = unknown/uniprocessor *)
  mutable b_wake_inflight : bool;
      (* a cross-CPU wake message is in flight: the thread is about to
         run, so it must not count as a blocked node in cycle search *)
}

type t = {
  mutable spaces : int;
  (* rights: (space, task, port) -> entry; dead ports as (space, port) *)
  rights : (int * int * int, centry) Hashtbl.t;
  dead_ports : (int * int, unit) Hashtbl.t;
  mutable transitions : int;
  mutable teardown_residual : int;
  (* deadlock: (space, tid) -> blocked; (space, res) -> owning tid *)
  blocked : (int * int, blocked) Hashtbl.t;
  owners : (int * string, int) Hashtbl.t;
  seen_cycles : (string, unit) Hashtbl.t;
  mutable blocks_tracked : int;
  (* buffers: (space, addr) -> bytes live; retired set for UAR detection *)
  buf_live : (int * int, int) Hashtbl.t;
  buf_retired : (int * int, unit) Hashtbl.t;
  mutable buf_shadowed : int;
  (* remap ownership: (space, task) -> ranges the task has moved out and
     no longer owns; (space, page addr) -> pinned flag for cache pages
     currently mapped out to another task *)
  moved_out : (int * int, (int * int * string) list ref) Hashtbl.t;
  mapped_out : (int * int, bool) Hashtbl.t;
  mutable remap_moves : int;
  (* findings, newest first, plus per-kind counters *)
  mutable recorded : finding list;
  mutable n_double_free : int;
  mutable n_downgrade : int;
  mutable n_cycle : int;
  mutable n_buf_double : int;
  mutable n_buf_uar : int;
  mutable n_double_move : int;
  mutable n_write_after_move : int;
  mutable n_mapout_evict : int;
  (* crash consistency: points enumerated, recovery invariant breaks *)
  mutable crash_points : int;
  mutable n_lost_writes : int;
  mutable n_torn_states : int;
  (* vnode lifecycle: (space, mount, file) -> shadow refcount; reclaimed
     set for use-after-reclaim; (space, mount, dir, name) -> file for
     positive name-cache entries *)
  vn_refs : (int * int * int, int) Hashtbl.t;
  vn_reclaimed : (int * int * int, unit) Hashtbl.t;
  nc_entries : (int * int * int * string, int) Hashtbl.t;
  mutable vnodes_shadowed : int;
  mutable ncache_shadowed : int;
  mutable n_vn_underflow : int;
  mutable n_vn_uar : int;
  mutable n_vn_leak : int;
  mutable n_nc_stale : int;
  (* netisr shard discipline: (space, socket uid) -> home shard *)
  net_homes : (int * int, int) Hashtbl.t;
  mutable net_sockets : int;
  mutable net_touches : int;
  mutable n_net_crossings : int;
  (* reincarnation: (space, shard) dead set; (space, socket uid) -> home
     shard for state that a killed shard held and its rebirth must
     restore *)
  reinc_dead : (int * int, unit) Hashtbl.t;
  reinc_expected : (int * int, int) Hashtbl.t;
  mutable reinc_kills : int;
  mutable reinc_reboots : int;
  mutable n_reinc_orphans : int;
  mutable n_reinc_stale : int;
  mutable n_reinc_residue : int;
  mutable n_reinc_budget : int;
}

let create () =
  {
    spaces = 0;
    rights = Hashtbl.create 64;
    dead_ports = Hashtbl.create 64;
    transitions = 0;
    teardown_residual = 0;
    blocked = Hashtbl.create 32;
    owners = Hashtbl.create 32;
    seen_cycles = Hashtbl.create 8;
    blocks_tracked = 0;
    buf_live = Hashtbl.create 64;
    buf_retired = Hashtbl.create 64;
    buf_shadowed = 0;
    moved_out = Hashtbl.create 16;
    mapped_out = Hashtbl.create 32;
    remap_moves = 0;
    recorded = [];
    n_double_free = 0;
    n_downgrade = 0;
    n_cycle = 0;
    n_buf_double = 0;
    n_buf_uar = 0;
    n_double_move = 0;
    n_write_after_move = 0;
    n_mapout_evict = 0;
    crash_points = 0;
    n_lost_writes = 0;
    n_torn_states = 0;
    vn_refs = Hashtbl.create 64;
    vn_reclaimed = Hashtbl.create 64;
    nc_entries = Hashtbl.create 64;
    vnodes_shadowed = 0;
    ncache_shadowed = 0;
    n_vn_underflow = 0;
    n_vn_uar = 0;
    n_vn_leak = 0;
    n_nc_stale = 0;
    net_homes = Hashtbl.create 64;
    net_sockets = 0;
    net_touches = 0;
    n_net_crossings = 0;
    reinc_dead = Hashtbl.create 8;
    reinc_expected = Hashtbl.create 64;
    reinc_kills = 0;
    reinc_reboots = 0;
    n_reinc_orphans = 0;
    n_reinc_stale = 0;
    n_reinc_residue = 0;
    n_reinc_budget = 0;
  }

let new_space t =
  t.spaces <- t.spaces + 1;
  t.spaces

let g_installed : t option ref = ref None
let install t = g_installed := Some t
let uninstall () = g_installed := None
let installed () = !g_installed

let record t ~checker ~kind detail =
  t.recorded <- { f_checker = checker; f_kind = kind; f_detail = detail }
                :: t.recorded

(* --- rights sanitizer --------------------------------------------------- *)

let right_allocated t ~space ~task ~tname ~port ~pname =
  t.transitions <- t.transitions + 1;
  Hashtbl.replace t.rights (space, task, port)
    { ce_right = R_receive; ce_refs = 1; ce_tname = tname; ce_pname = pname }

let right_inserted t ~space ~task ~tname ~port ~pname ~right ~now =
  t.transitions <- t.transitions + 1;
  match Hashtbl.find_opt t.rights (space, task, port) with
  | None ->
      Hashtbl.replace t.rights (space, task, port)
        { ce_right = now; ce_refs = 1; ce_tname = tname; ce_pname = pname }
  | Some e ->
      e.ce_refs <- e.ce_refs + 1;
      if right_rank now < right_rank e.ce_right then begin
        t.n_downgrade <- t.n_downgrade + 1;
        record t ~checker:"rights" ~kind:"downgrade"
          (Printf.sprintf
             "task %s: inserting %s over held %s right to port %s \
              weakened the capability"
             tname (right_name right) (right_name e.ce_right) pname)
      end;
      e.ce_right <- now

let right_deallocated t ~space ~task ~port =
  t.transitions <- t.transitions + 1;
  match Hashtbl.find_opt t.rights (space, task, port) with
  | None ->
      t.n_double_free <- t.n_double_free + 1;
      record t ~checker:"rights" ~kind:"double-free"
        (Printf.sprintf
           "task t%d deallocated a right to port p%d the shadow no longer \
            holds" task port)
  | Some e ->
      e.ce_refs <- e.ce_refs - 1;
      if e.ce_refs <= 0 then Hashtbl.remove t.rights (space, task, port)

let dealloc_missing t ~space:_ ~task:_ ~tname ~name =
  t.n_double_free <- t.n_double_free + 1;
  record t ~checker:"rights" ~kind:"double-free"
    (Printf.sprintf
       "task %s deallocated name %d, which its port space does not hold"
       tname name)

let right_moved t ~space ~from_task ~from_name ~to_task ~to_name ~port ~pname
    ~right ~now =
  right_deallocated t ~space ~task:from_task ~port;
  (* the move's dealloc half is implied, not a user transition *)
  (match Hashtbl.find_opt t.rights (space, to_task, port) with
  | Some _ ->
      right_inserted t ~space ~task:to_task ~tname:to_name ~port ~pname ~right
        ~now
  | None ->
      ignore from_name;
      t.transitions <- t.transitions + 1;
      Hashtbl.replace t.rights (space, to_task, port)
        { ce_right = now; ce_refs = 1; ce_tname = to_name; ce_pname = pname })

let port_destroyed t ~space ~port =
  t.transitions <- t.transitions + 1;
  Hashtbl.replace t.dead_ports (space, port) ()

let task_teardown t ~space ~task ~tname =
  ignore tname;
  let keys =
    Hashtbl.fold
      (fun ((sp, tk, _) as k) _ acc -> if sp = space && tk = task then k :: acc else acc)
      t.rights []
  in
  List.iter (Hashtbl.remove t.rights) keys;
  let n = List.length keys in
  t.teardown_residual <- t.teardown_residual + n;
  n

let live_rights t ~space ~task =
  Hashtbl.fold
    (fun (sp, tk, _) _ acc -> if sp = space && tk = task then acc + 1 else acc)
    t.rights 0

let dead_rights t ~space ~task =
  Hashtbl.fold
    (fun (sp, tk, p) _ acc ->
      if sp = space && tk = task && Hashtbl.mem t.dead_ports (space, p) then
        acc + 1
      else acc)
    t.rights 0

(* --- deadlock detector -------------------------------------------------- *)

let successors t ~space tid =
  match Hashtbl.find_opt t.blocked (space, tid) with
  | None -> []
  (* a wake message is already racing towards this thread: it is not
     really stuck, so waits through it cannot close a cycle *)
  | Some b when b.b_wake_inflight -> []
  | Some b -> (
      match Hashtbl.find_opt t.owners (space, b.b_res) with
      | Some o when o <> tid && not (List.mem o b.b_holders) -> o :: b.b_holders
      | _ -> b.b_holders)

(* DFS from [start]; returns the cycle path [start; ...; last] where
   [last] waits (transitively) back on [start]. *)
let find_cycle t ~space start =
  let visited = Hashtbl.create 8 in
  let rec go tid path =
    if Hashtbl.mem visited tid then None
    else begin
      Hashtbl.add visited tid ();
      let path = tid :: path in
      let succs = successors t ~space tid in
      if List.mem start succs then Some (List.rev path)
      else
        List.fold_left
          (fun acc s -> match acc with Some _ -> acc | None -> go s path)
          None succs
    end
  in
  go start []

let describe_cycle t ~space path =
  let leg tid =
    match Hashtbl.find_opt t.blocked (space, tid) with
    | Some b -> Printf.sprintf "t%d(%s) waits on %s" tid b.b_tname b.b_rdesc
    | None -> Printf.sprintf "t%d" tid
  in
  let base =
    String.concat " -> " (List.map leg path)
    ^ Printf.sprintf " -> back to t%d" (List.hd path)
  in
  (* a cycle whose waiters blocked on different CPUs is a cross-CPU
     deadlock: flag it, naming the CPUs involved *)
  let cpus =
    List.sort_uniq compare
      (List.filter_map
         (fun tid ->
           match Hashtbl.find_opt t.blocked (space, tid) with
           | Some b when b.b_cpu >= 0 -> Some b.b_cpu
           | _ -> None)
         path)
  in
  match cpus with
  | _ :: _ :: _ ->
      base
      ^ Printf.sprintf " [cross-CPU: cpus %s]"
          (String.concat "," (List.map string_of_int cpus))
  | _ -> base

let blocked_on t ~space ~tid ~tname ~cpu ~res ~rdesc ~holders =
  t.blocks_tracked <- t.blocks_tracked + 1;
  Hashtbl.replace t.blocked (space, tid)
    {
      b_tname = tname;
      b_res = res;
      b_rdesc = rdesc;
      b_holders = holders;
      b_cpu = cpu;
      b_wake_inflight = false;
    };
  match find_cycle t ~space tid with
  | None -> ()
  | Some path ->
      let key =
        String.concat ","
          (List.map string_of_int (List.sort compare path))
        ^ Printf.sprintf "@%d" space
      in
      if not (Hashtbl.mem t.seen_cycles key) then begin
        Hashtbl.add t.seen_cycles key ();
        t.n_cycle <- t.n_cycle + 1;
        record t ~checker:"deadlock" ~kind:"wait-cycle"
          (describe_cycle t ~space path)
      end

let unblocked t ~space ~tid = Hashtbl.remove t.blocked (space, tid)

(* Cross-CPU wake tracking: between the send of an [X_wake] scheduler
   message and its delivery, the target looks blocked to everyone but is
   guaranteed to run — treating it as a wait-graph node would report
   deadlocks that resolve by themselves. *)
let remote_wake_sent t ~space ~tid =
  match Hashtbl.find_opt t.blocked (space, tid) with
  | Some b -> b.b_wake_inflight <- true
  | None -> ()

let remote_wake_delivered t ~space ~tid = Hashtbl.remove t.blocked (space, tid)

let retarget t ~space ~tid ~holders =
  match Hashtbl.find_opt t.blocked (space, tid) with
  | None -> ()
  | Some b -> b.b_holders <- holders

let acquired t ~space ~tid ~res = Hashtbl.replace t.owners (space, res) tid

let released t ~space ~res = Hashtbl.remove t.owners (space, res)

let thread_gone t ~space ~tid =
  Hashtbl.remove t.blocked (space, tid);
  let owned =
    Hashtbl.fold
      (fun ((sp, _) as k) o acc -> if sp = space && o = tid then k :: acc else acc)
      t.owners []
  in
  List.iter (Hashtbl.remove t.owners) owned

let blocked_count t = Hashtbl.length t.blocked

(* --- buffer-lifetime sanitizer ------------------------------------------ *)

let buf_allocated t ~space ~addr ~bytes =
  t.buf_shadowed <- t.buf_shadowed + 1;
  Hashtbl.replace t.buf_live (space, addr) bytes;
  Hashtbl.remove t.buf_retired (space, addr)

let buf_used t ~space ~addr =
  if Hashtbl.mem t.buf_retired (space, addr) then begin
    t.n_buf_uar <- t.n_buf_uar + 1;
    record t ~checker:"buffer" ~kind:"use-after-release"
      (Printf.sprintf "kernel buffer 0x%x touched after release" addr)
  end

let buf_released t ~space ~addr =
  if Hashtbl.mem t.buf_live (space, addr) then begin
    Hashtbl.remove t.buf_live (space, addr);
    Hashtbl.replace t.buf_retired (space, addr) ()
  end
  else if Hashtbl.mem t.buf_retired (space, addr) then begin
    t.n_buf_double <- t.n_buf_double + 1;
    record t ~checker:"buffer" ~kind:"double-release"
      (Printf.sprintf "kernel buffer 0x%x released twice" addr)
  end
(* else: unknown addr — allocated before attach or orphaned by a recycle *)

let buf_reset t ~space =
  let purge tbl =
    let keys =
      Hashtbl.fold
        (fun ((sp, _) as k) _ acc -> if sp = space then k :: acc else acc)
        tbl []
    in
    List.iter (Hashtbl.remove tbl) keys
  in
  purge t.buf_live;
  purge t.buf_retired

(* --- remap-ownership sanitizer ------------------------------------------ *)

(* remap_move transfers ownership of a page range: after the donation the
   sender must treat the range as gone.  We shadow each task's moved-out
   ranges and flag (a) moving a range that was already moved (double
   move), (b) a write landing inside a moved-out range (write after
   move), and (c) a cache page being evicted or reused while it is still
   mapped out to a client without a pin (the file server's zero-copy
   reply protocol requires the pin). *)

let ranges_overlap a1 b1 a2 b2 = a1 < a2 + b2 && a2 < a1 + b1

let remap_moved t ~space ~task ~tname ~addr ~bytes =
  t.remap_moves <- t.remap_moves + 1;
  let key = (space, task) in
  let lst =
    match Hashtbl.find_opt t.moved_out key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.moved_out key r;
        r
  in
  List.iter
    (fun (a, b, _) ->
      if ranges_overlap addr bytes a b then begin
        t.n_double_move <- t.n_double_move + 1;
        record t ~checker:"remap" ~kind:"double-move"
          (Printf.sprintf
             "task %s: range 0x%x+%d moved out again (overlaps moved-out \
              0x%x+%d)"
             tname addr bytes a b)
      end)
    !lst;
  lst := (addr, bytes, tname) :: !lst

let remap_write t ~space ~task ~addr ~bytes =
  match Hashtbl.find_opt t.moved_out (space, task) with
  | None -> ()
  | Some lst ->
      let hit, rest =
        List.partition (fun (a, b, _) -> ranges_overlap addr bytes a b) !lst
      in
      List.iter
        (fun (a, b, tname) ->
          t.n_write_after_move <- t.n_write_after_move + 1;
          record t ~checker:"remap" ~kind:"write-after-move"
            (Printf.sprintf
               "task %s: write to 0x%x+%d lands in range 0x%x+%d whose \
                pages were donated by remap_move"
               tname addr bytes a b))
        hit;
      (* report once, then re-arm: the range stays gone but we do not
         repeat the finding for every subsequent access *)
      lst := rest

let remap_clear t ~space ~task ~addr ~bytes =
  match Hashtbl.find_opt t.moved_out (space, task) with
  | None -> ()
  | Some lst ->
      lst := List.filter (fun (a, b, _) -> not (ranges_overlap addr bytes a b)) !lst

let cache_mapped_out t ~space ~addr ~pinned =
  Hashtbl.replace t.mapped_out (space, addr) pinned

let cache_unmapped t ~space ~addr =
  Hashtbl.remove t.mapped_out (space, addr)

let cache_reused t ~space ~addr ~tag =
  match Hashtbl.find_opt t.mapped_out (space, addr) with
  | None -> ()
  | Some pinned ->
      t.n_mapout_evict <- t.n_mapout_evict + 1;
      record t ~checker:"remap" ~kind:"mapout-eviction"
        (Printf.sprintf
           "cache page 0x%x (%s) reused while still mapped out to a \
            client%s"
           addr tag
           (if pinned then " despite its pin" else " without a pin"));
      Hashtbl.remove t.mapped_out (space, addr)

(* --- crash-consistency checker ------------------------------------------ *)

let crash_point_checked t ~space:_ = t.crash_points <- t.crash_points + 1

let crash_lost_write t ~space:_ detail =
  t.n_lost_writes <- t.n_lost_writes + 1;
  record t ~checker:"crash" ~kind:"lost-write" detail

let crash_torn_state t ~space:_ detail =
  t.n_torn_states <- t.n_torn_states + 1;
  record t ~checker:"crash" ~kind:"torn-state" detail

(* --- vnode-lifecycle checker --------------------------------------------- *)

(* The VFS reports vnode interning, long-lived references, reclamation
   (unlink / recovery) and every dispatch through a vnode; the shadow
   flags dispatch through a reclaimed vnode, reference-count underflow,
   and references still outstanding when a mount recovers.  Positive
   name-cache entries are shadowed too, so a cache hit whose target was
   reclaimed without invalidation is caught as a stale entry. *)

let vnode_active t ~space ~mount ~file =
  t.vnodes_shadowed <- t.vnodes_shadowed + 1;
  (* formats reuse file ids: a fresh vnode under a reclaimed id is a new
     incarnation, not a use of the old one *)
  Hashtbl.remove t.vn_reclaimed (space, mount, file);
  if not (Hashtbl.mem t.vn_refs (space, mount, file)) then
    Hashtbl.replace t.vn_refs (space, mount, file) 0

let vnode_ref t ~space ~mount ~file =
  let k = (space, mount, file) in
  let n = Option.value (Hashtbl.find_opt t.vn_refs k) ~default:0 in
  Hashtbl.replace t.vn_refs k (n + 1)

let vnode_unref t ~space ~mount ~file =
  let k = (space, mount, file) in
  match Hashtbl.find_opt t.vn_refs k with
  | Some n when n > 0 -> Hashtbl.replace t.vn_refs k (n - 1)
  | _ ->
      t.n_vn_underflow <- t.n_vn_underflow + 1;
      record t ~checker:"vnode" ~kind:"ref-underflow"
        (Printf.sprintf
           "vnode m%d/f%d unreferenced more times than it was referenced"
           mount file)

let vnode_reclaimed t ~space ~mount ~file =
  Hashtbl.replace t.vn_reclaimed (space, mount, file) ()

let vnode_used t ~space ~mount ~file ~op =
  if Hashtbl.mem t.vn_reclaimed (space, mount, file) then begin
    t.n_vn_uar <- t.n_vn_uar + 1;
    record t ~checker:"vnode" ~kind:"use-after-reclaim"
      (Printf.sprintf "%s dispatched through reclaimed vnode m%d/f%d" op
         mount file);
    (* one bug is one finding: re-arm rather than repeating *)
    Hashtbl.remove t.vn_reclaimed (space, mount, file)
  end

let vnode_mount_recovered t ~space ~mount =
  let keys =
    Hashtbl.fold
      (fun ((sp, m, _) as k) n acc ->
        if sp = space && m = mount then (k, n) :: acc else acc)
      t.vn_refs []
  in
  List.iter
    (fun (((_, m, f) as k), n) ->
      if n > 0 then begin
        t.n_vn_leak <- t.n_vn_leak + 1;
        record t ~checker:"vnode" ~kind:"leaked-refs"
          (Printf.sprintf
             "vnode m%d/f%d still holds %d reference(s) across mount \
              recovery"
             m f n)
      end;
      Hashtbl.remove t.vn_refs k)
    keys;
  let dead =
    Hashtbl.fold
      (fun ((sp, m, _) as k) _ acc ->
        if sp = space && m = mount then k :: acc else acc)
      t.vn_reclaimed []
  in
  List.iter (Hashtbl.remove t.vn_reclaimed) dead

let vnode_live_refs t ~space ~mount =
  Hashtbl.fold
    (fun (sp, m, _) n acc -> if sp = space && m = mount then acc + n else acc)
    t.vn_refs 0

(* --- name-cache shadow ---------------------------------------------------- *)

let ncache_stored t ~space ~mount ~dir ~name ~file =
  t.ncache_shadowed <- t.ncache_shadowed + 1;
  Hashtbl.replace t.nc_entries (space, mount, dir, name) file

let ncache_hit t ~space ~mount ~dir ~name =
  match Hashtbl.find_opt t.nc_entries (space, mount, dir, name) with
  | None -> ()
  | Some file ->
      if Hashtbl.mem t.vn_reclaimed (space, mount, file) then begin
        t.n_nc_stale <- t.n_nc_stale + 1;
        record t ~checker:"vnode" ~kind:"stale-entry"
          (Printf.sprintf
             "name cache served (m%d/d%d, %S) -> f%d after the vnode was \
              reclaimed without invalidation"
             mount dir name file);
        Hashtbl.remove t.nc_entries (space, mount, dir, name)
      end

let ncache_invalidated t ~space ~mount ~dir ~name =
  Hashtbl.remove t.nc_entries (space, mount, dir, name)

let ncache_cleared t ~space =
  let keys =
    Hashtbl.fold
      (fun ((sp, _, _, _) as k) _ acc -> if sp = space then k :: acc else acc)
      t.nc_entries []
  in
  List.iter (Hashtbl.remove t.nc_entries) keys

(* --- netisr shard checker ------------------------------------------------- *)

let net_socket_home t ~space ~sock ~shard =
  t.net_sockets <- t.net_sockets + 1;
  Hashtbl.replace t.net_homes (space, sock) shard

let net_touched t ~space ~sock ~home ~shard =
  t.net_touches <- t.net_touches + 1;
  (* trust the registered home over the caller's claim, if we saw it *)
  let home =
    match Hashtbl.find_opt t.net_homes (space, sock) with
    | Some h -> h
    | None -> home
  in
  if shard <> home then begin
    t.n_net_crossings <- t.n_net_crossings + 1;
    record t ~checker:"net" ~kind:"shard-crossing"
      (Printf.sprintf
         "socket u%d (home shard %d) was touched by shard %d's protocol \
          thread"
         sock home shard)
  end

(* --- reincarnation checker ------------------------------------------------ *)

let reinc_shard_killed t ~space ~shard =
  t.reinc_kills <- t.reinc_kills + 1;
  Hashtbl.replace t.reinc_dead (space, shard) ()

let reinc_expect t ~space ~shard ~sock =
  Hashtbl.replace t.reinc_expected (space, sock) shard

let reinc_restored t ~space ~shard ~sock =
  match Hashtbl.find_opt t.reinc_expected (space, sock) with
  | Some _ -> Hashtbl.remove t.reinc_expected (space, sock)
  | None ->
      t.n_reinc_stale <- t.n_reinc_stale + 1;
      record t ~checker:"reinc" ~kind:"stale-registry"
        (Printf.sprintf
           "shard %d rebuilt socket u%d from a registry entry that matched \
            nothing the dead shard held"
           shard sock)

let reinc_shard_reborn t ~space ~shard =
  t.reinc_reboots <- t.reinc_reboots + 1;
  Hashtbl.remove t.reinc_dead (space, shard);
  let orphans =
    Hashtbl.fold
      (fun ((sp, sock) as k) home acc ->
        if sp = space && home = shard then (k, sock) :: acc else acc)
      t.reinc_expected []
  in
  List.iter
    (fun (k, sock) ->
      Hashtbl.remove t.reinc_expected k;
      t.n_reinc_orphans <- t.n_reinc_orphans + 1;
      record t ~checker:"reinc" ~kind:"orphaned-state"
        (Printf.sprintf
           "socket u%d was live in shard %d at its death and reincarnation \
            did not restore it"
           sock shard))
    (List.sort compare orphans)

let reinc_rights_residue t ~space:_ ~shard ~port ~pname =
  t.n_reinc_residue <- t.n_reinc_residue + 1;
  record t ~checker:"reinc" ~kind:"rights-residue"
    (Printf.sprintf
       "after shard %d's reboot the netserver still holds rights to %s(p%d) \
        backing no live socket"
       shard pname port)

let reinc_budget_exhausted t ~space:_ ~path ~restarts =
  t.n_reinc_budget <- t.n_reinc_budget + 1;
  record t ~checker:"reinc" ~kind:"budget-exhausted"
    (Printf.sprintf
       "%s exhausted its restart budget after %d restart(s) and was demoted \
        to degraded mode"
       path restarts)

let reinc_pending t ~space =
  Hashtbl.fold
    (fun (sp, _) _ acc -> if sp = space then acc + 1 else acc)
    t.reinc_expected 0

(* --- reporting ---------------------------------------------------------- *)

let findings t = List.rev t.recorded

let leak_findings t =
  let leaks =
    Hashtbl.fold
      (fun (sp, tk, p) e acc ->
        if Hashtbl.mem t.dead_ports (sp, p) then ((sp, tk, p), e) :: acc
        else acc)
      t.rights []
  in
  let leaks = List.sort (fun (a, _) (b, _) -> compare a b) leaks in
  List.map
    (fun ((_, tk, p), e) ->
      {
        f_checker = "rights";
        f_kind = "leak";
        f_detail =
          Printf.sprintf
            "task %s(t%d) still holds a %s right (refs %d) to dead port \
             %s(p%d)"
            e.ce_tname tk (right_name e.ce_right) e.ce_refs e.ce_pname p;
      })
    leaks

let report t =
  let leaks = leak_findings t in
  {
    rep_spaces = t.spaces;
    rep_right_transitions = t.transitions;
    rep_live_rights = Hashtbl.length t.rights;
    rep_leaked_rights = List.length leaks;
    rep_right_double_frees = t.n_double_free;
    rep_right_downgrades = t.n_downgrade;
    rep_teardown_residual = t.teardown_residual;
    rep_blocks_tracked = t.blocks_tracked;
    rep_wait_cycles = t.n_cycle;
    rep_buf_shadowed = t.buf_shadowed;
    rep_buf_double_releases = t.n_buf_double;
    rep_buf_use_after_release = t.n_buf_uar;
    rep_remap_moves = t.remap_moves;
    rep_double_moves = t.n_double_move;
    rep_write_after_move = t.n_write_after_move;
    rep_mapout_evictions = t.n_mapout_evict;
    rep_crash_points = t.crash_points;
    rep_lost_writes = t.n_lost_writes;
    rep_torn_states = t.n_torn_states;
    rep_vnodes_shadowed = t.vnodes_shadowed;
    rep_vnode_ref_underflows = t.n_vn_underflow;
    rep_vnode_use_after_reclaim = t.n_vn_uar;
    rep_vnode_leaks = t.n_vn_leak;
    rep_ncache_shadowed = t.ncache_shadowed;
    rep_ncache_stale = t.n_nc_stale;
    rep_net_sockets = t.net_sockets;
    rep_net_touches = t.net_touches;
    rep_net_crossings = t.n_net_crossings;
    rep_reinc_kills = t.reinc_kills;
    rep_reinc_reboots = t.reinc_reboots;
    rep_reinc_orphans = t.n_reinc_orphans;
    rep_reinc_stale = t.n_reinc_stale;
    rep_reinc_residue = t.n_reinc_residue;
    rep_reinc_budget_exhausted = t.n_reinc_budget;
    rep_findings = findings t @ leaks;
  }

let total_findings r =
  r.rep_leaked_rights + r.rep_right_double_frees + r.rep_right_downgrades
  + r.rep_wait_cycles + r.rep_buf_double_releases + r.rep_buf_use_after_release
  + r.rep_double_moves + r.rep_write_after_move + r.rep_mapout_evictions
  + r.rep_lost_writes + r.rep_torn_states + r.rep_vnode_ref_underflows
  + r.rep_vnode_use_after_reclaim + r.rep_vnode_leaks + r.rep_ncache_stale
  + r.rep_net_crossings + r.rep_reinc_orphans + r.rep_reinc_stale
  + r.rep_reinc_residue

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  let field k v = Buffer.add_string b (Printf.sprintf "\"%s\": %d, " k v) in
  field "spaces" r.rep_spaces;
  field "right_transitions" r.rep_right_transitions;
  field "live_rights" r.rep_live_rights;
  field "leaked_rights" r.rep_leaked_rights;
  field "right_double_frees" r.rep_right_double_frees;
  field "right_downgrades" r.rep_right_downgrades;
  field "teardown_residual" r.rep_teardown_residual;
  field "blocks_tracked" r.rep_blocks_tracked;
  field "wait_cycles" r.rep_wait_cycles;
  field "buffers_shadowed" r.rep_buf_shadowed;
  field "buf_double_releases" r.rep_buf_double_releases;
  field "buf_use_after_release" r.rep_buf_use_after_release;
  field "remap_moves" r.rep_remap_moves;
  field "double_moves" r.rep_double_moves;
  field "write_after_move" r.rep_write_after_move;
  field "mapout_evictions" r.rep_mapout_evictions;
  field "crash_points" r.rep_crash_points;
  field "lost_writes" r.rep_lost_writes;
  field "torn_states" r.rep_torn_states;
  field "vnodes_shadowed" r.rep_vnodes_shadowed;
  field "vnode_ref_underflows" r.rep_vnode_ref_underflows;
  field "vnode_use_after_reclaim" r.rep_vnode_use_after_reclaim;
  field "vnode_leaks" r.rep_vnode_leaks;
  field "ncache_shadowed" r.rep_ncache_shadowed;
  field "ncache_stale" r.rep_ncache_stale;
  field "net_sockets" r.rep_net_sockets;
  field "net_touches" r.rep_net_touches;
  field "net_shard_crossings" r.rep_net_crossings;
  field "reinc_kills" r.rep_reinc_kills;
  field "reinc_reboots" r.rep_reinc_reboots;
  field "reinc_orphans" r.rep_reinc_orphans;
  field "reinc_stale_registry" r.rep_reinc_stale;
  field "reinc_rights_residue" r.rep_reinc_residue;
  field "reinc_budget_exhausted" r.rep_reinc_budget_exhausted;
  field "total_findings" (total_findings r);
  Buffer.add_string b "\"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"checker\": \"%s\", \"kind\": \"%s\", \"detail\": \"%s\"}"
           f.f_checker f.f_kind (json_escape f.f_detail)))
    r.rep_findings;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>machcheck: %d space(s), %d finding(s)@,\
     rights   : %d transitions, %d live, %d leaked, %d double-free, %d \
     downgrade, %d teardown-residual@,\
     deadlock : %d blocks tracked, %d wait-cycle(s)@,\
     buffers  : %d shadowed, %d double-release, %d use-after-release@,\
     remap    : %d moves, %d double-move, %d write-after-move, %d \
     mapout-eviction@,\
     crash    : %d point(s) checked, %d lost-write, %d torn-state@,\
     vnode    : %d shadowed, %d ref-underflow, %d use-after-reclaim, %d \
     leaked-refs; ncache %d stored, %d stale@,\
     net      : %d socket(s), %d touches, %d shard-crossing@,\
     reinc    : %d kill(s), %d reboot(s), %d orphaned, %d stale-registry, %d \
     rights-residue, %d budget-exhausted@]"
    r.rep_spaces (total_findings r) r.rep_right_transitions r.rep_live_rights
    r.rep_leaked_rights r.rep_right_double_frees r.rep_right_downgrades
    r.rep_teardown_residual r.rep_blocks_tracked r.rep_wait_cycles
    r.rep_buf_shadowed r.rep_buf_double_releases r.rep_buf_use_after_release
    r.rep_remap_moves r.rep_double_moves r.rep_write_after_move
    r.rep_mapout_evictions r.rep_crash_points r.rep_lost_writes
    r.rep_torn_states r.rep_vnodes_shadowed r.rep_vnode_ref_underflows
    r.rep_vnode_use_after_reclaim r.rep_vnode_leaks r.rep_ncache_shadowed
    r.rep_ncache_stale r.rep_net_sockets r.rep_net_touches r.rep_net_crossings
    r.rep_reinc_kills r.rep_reinc_reboots r.rep_reinc_orphans r.rep_reinc_stale
    r.rep_reinc_residue r.rep_reinc_budget_exhausted;
  if r.rep_findings <> [] then begin
    Format.fprintf ppf "@.";
    List.iter
      (fun f ->
        Format.fprintf ppf "  [%s/%s] %s@." f.f_checker f.f_kind f.f_detail)
      r.rep_findings
  end
