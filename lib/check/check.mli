(** Machcheck: shadow analysis of kernel resource use.

    Three cooperating checkers observe the microkernel's hot paths and
    report misuse that would otherwise be invisible across the
    microkernel boundary — the fragility the paper attributes to leaked
    port rights, stateful kernel wrappers and stacked managers:

    - the {b rights sanitizer} shadow-accounts every port-right
      transition (allocate / insert / move / deallocate / destroy) and
      reports leaked rights (entries still naming a dead port), double
      frees and downgraded rights;
    - the {b deadlock detector} maintains a wait-for graph over every
      blocking edge the IPC, RPC and synchronizer layers report and runs
      cycle detection each time a thread blocks;
    - the {b buffer-lifetime sanitizer} mirrors the kernel
      message-buffer free list and reports double-release and
      use-after-release.

    The checker is pure host-side bookkeeping: it charges no simulated
    cycles and never touches kernel state, so enabling it cannot perturb
    a measurement, and with no checker attached every hook is a single
    [None] match (the [Mach.Fault] pattern).

    Because one checker instance may watch several booted systems in
    sequence (a workload sweep boots a fresh machine per point), every
    event is keyed by a {e space}: an id handed out by {!new_space} once
    per attached system, so task/port/thread/buffer ids from different
    boots never alias. *)

type t

type right = R_receive | R_send | R_send_once

val right_rank : right -> int
(** Receive > send > send-once, as in {!Mach.Port}. *)

type finding = {
  f_checker : string;  (* "rights" | "deadlock" | "buffer" | "remap"
                          | "crash" *)
  f_kind : string;  (* "leak" | "double-free" | "downgrade" | "wait-cycle"
                       | "double-release" | "use-after-release"
                       | "lost-write" | "torn-state" | ... *)
  f_detail : string;
}

type report = {
  rep_spaces : int;
  (* rights sanitizer *)
  rep_right_transitions : int;
  rep_live_rights : int;  (* shadow entries still held at report time *)
  rep_leaked_rights : int;  (* live entries naming a dead port *)
  rep_right_double_frees : int;
  rep_right_downgrades : int;
  rep_teardown_residual : int;
      (* rights released implicitly because their task was torn down *)
  (* deadlock detector *)
  rep_blocks_tracked : int;
  rep_wait_cycles : int;
  (* buffer sanitizer *)
  rep_buf_shadowed : int;  (* allocations observed *)
  rep_buf_double_releases : int;
  rep_buf_use_after_release : int;
  (* remap-ownership sanitizer *)
  rep_remap_moves : int;  (* remap_move donations observed *)
  rep_double_moves : int;
  rep_write_after_move : int;
  rep_mapout_evictions : int;
  (* crash-consistency checker *)
  rep_crash_points : int;  (* crash points enumerated and verified *)
  rep_lost_writes : int;  (* acknowledged writes missing after recovery *)
  rep_torn_states : int;  (* recovery left a structural invariant broken *)
  (* vnode-lifecycle checker *)
  rep_vnodes_shadowed : int;  (* vnode activations observed *)
  rep_vnode_ref_underflows : int;
  rep_vnode_use_after_reclaim : int;
  rep_vnode_leaks : int;  (* refs still held when a mount recovered *)
  rep_ncache_shadowed : int;  (* positive name-cache stores observed *)
  rep_ncache_stale : int;  (* cache hits that named a reclaimed vnode *)
  (* netisr shard checker *)
  rep_net_sockets : int;  (* socket home registrations observed *)
  rep_net_touches : int;  (* per-packet socket touches observed *)
  rep_net_crossings : int;  (* touches from a shard that is not home *)
  (* reincarnation checker *)
  rep_reinc_kills : int;  (* shard kills observed *)
  rep_reinc_reboots : int;  (* shard rebirths observed *)
  rep_reinc_orphans : int;  (* dead-shard state a rebirth failed to restore *)
  rep_reinc_stale : int;  (* registry entries restoring nothing real *)
  rep_reinc_residue : int;  (* rights left behind after a shard reboot *)
  rep_reinc_budget_exhausted : int;
      (* supervised servers demoted to degraded mode (informational — a
         policy outcome, not a safety violation, so it is excluded from
         {!total_findings}) *)
  rep_findings : finding list;  (* oldest first; includes leak findings *)
}

val create : unit -> t

val new_space : t -> int
(** Register one booted system with the checker; all events from that
    system must carry the returned id. *)

(* --- global attach point ------------------------------------------------ *)

val install : t -> unit
(** Make [t] the process-wide checker: systems booted while installed
    attach themselves to it.  Workloads use this so the machines they
    boot internally run under Machcheck. *)

val uninstall : unit -> unit

val installed : unit -> t option

(* --- rights sanitizer --------------------------------------------------- *)

val right_allocated :
  t -> space:int -> task:int -> tname:string -> port:int -> pname:string ->
  unit
(** A receive right was deposited by port allocation. *)

val right_inserted :
  t -> space:int -> task:int -> tname:string -> port:int -> pname:string ->
  right:right -> now:right -> unit
(** A right was inserted; [now] is the right the kernel actually records
    after its hierarchy rules.  If [now] is weaker than the shadow's
    recorded right, a "downgrade" finding fires — the kernel weakened a
    held capability. *)

val right_deallocated : t -> space:int -> task:int -> port:int -> unit
(** One reference dropped; the shadow entry dies at zero.  Deallocating
    a right the shadow does not know is a "double-free" finding. *)

val dealloc_missing :
  t -> space:int -> task:int -> tname:string -> name:int -> unit
(** The kernel itself rejected a deallocate ([Kern_invalid_name]): the
    task freed a name it no longer holds — a "double-free" finding. *)

val right_moved :
  t -> space:int -> from_task:int -> from_name:string -> to_task:int ->
  to_name:string -> port:int -> pname:string -> right:right -> now:right ->
  unit
(** One reference of [right] moved between port spaces; [now] is the
    right the destination actually holds afterwards (a deposit into an
    entry holding a stronger right keeps the stronger one — recording
    anything weaker than the shadow is a "downgrade" finding). *)

val port_destroyed : t -> space:int -> port:int -> unit
(** Marks the port dead: any right entry still naming it is a leak. *)

val task_teardown : t -> space:int -> task:int -> tname:string -> int
(** Release every shadow entry the task still holds (the kernel reclaims
    the port space with the task); returns the residual count, which is
    also accumulated into {!report}[.rep_teardown_residual] rather than
    silently dropped. *)

val live_rights : t -> space:int -> task:int -> int
val dead_rights : t -> space:int -> task:int -> int
(** Entries the task holds that name a destroyed port — the residue that
    must be zero after a supervised restart. *)

(* --- deadlock detector -------------------------------------------------- *)

val blocked_on :
  t -> space:int -> tid:int -> tname:string -> cpu:int -> res:string ->
  rdesc:string -> holders:int list -> unit
(** Thread [tid] blocked on resource [res] (a stable key; [rdesc] is the
    human name).  [holders] are the threads that could unblock it, as
    known at block time; resources with an owner registered via
    {!acquired} contribute that owner as well.  [cpu] is the CPU the
    thread blocked on (-1 = unknown): a detected cycle whose waiters
    span more than one CPU is flagged cross-CPU in the finding.  Runs
    cycle detection from [tid]; a cycle is a "wait-cycle" finding naming
    every edge. *)

val unblocked : t -> space:int -> tid:int -> unit
(** The thread resumed (normally, by timeout, or woken by a dying port):
    its wait-for edge is removed. *)

val remote_wake_sent : t -> space:int -> tid:int -> unit
(** A cross-CPU wake message for [tid] is in flight: the thread still
    looks blocked but is guaranteed to run, so cycle search must not
    pass through it (suppresses self-resolving "deadlocks"). *)

val remote_wake_delivered : t -> space:int -> tid:int -> unit
(** The wake message arrived and the thread is runnable again —
    equivalent to {!unblocked}. *)

val retarget : t -> space:int -> tid:int -> holders:int list -> unit
(** Narrow a blocked thread's holder set once the real peer is known
    (e.g. the server thread that picked up its RPC). *)

val acquired : t -> space:int -> tid:int -> res:string -> unit
(** [tid] now owns [res] (mutex semantics). *)

val released : t -> space:int -> res:string -> unit

val thread_gone : t -> space:int -> tid:int -> unit
(** The thread terminated: purge its wait-for edge and ownerships so no
    stale deadlock edges survive a kill. *)

val blocked_count : t -> int
(** Threads currently in the wait-for graph (all spaces). *)

(* --- buffer-lifetime sanitizer ------------------------------------------ *)

val buf_allocated : t -> space:int -> addr:int -> bytes:int -> unit
val buf_used : t -> space:int -> addr:int -> unit
(** A kernel path read or wrote the buffer; if the shadow retired it, a
    "use-after-release" finding fires. *)

val buf_released : t -> space:int -> addr:int -> unit
(** Live buffers retire; releasing a retired buffer is a
    "double-release" finding; unknown addresses (handed out before the
    checker attached, or orphaned by an arena recycle) are ignored. *)

val buf_reset : t -> space:int -> unit
(** The arena was recycled wholesale: all shadow state for the space is
    dropped (outstanding handles legitimately dangle afterwards). *)

(* --- remap-ownership sanitizer ------------------------------------------ *)

val remap_moved :
  t -> space:int -> task:int -> tname:string -> addr:int -> bytes:int -> unit
(** The task donated [addr, addr+bytes) to another task via remap_move
    and no longer owns those pages.  Donating a range that overlaps one
    already moved out is a "double-move" finding. *)

val remap_write :
  t -> space:int -> task:int -> addr:int -> bytes:int -> unit
(** A write by the task touched [addr, addr+bytes); if it lands inside a
    moved-out range, a "write-after-move" finding fires (once — the
    offending range is then dropped so one bug is one finding). *)

val remap_clear :
  t -> space:int -> task:int -> addr:int -> bytes:int -> unit
(** The range was legitimately reused (deallocated and re-allocated):
    forget any moved-out state overlapping it. *)

val cache_mapped_out : t -> space:int -> addr:int -> pinned:bool -> unit
(** A cache page at [addr] is now mapped out to a client (the file
    server's zero-copy reply path); [pinned] says whether the cache
    holds a pin that should keep the page from being recycled. *)

val cache_unmapped : t -> space:int -> addr:int -> unit
(** The client unmapped the page and the cache may reuse it. *)

val cache_reused : t -> space:int -> addr:int -> tag:string -> unit
(** The cache recycled the page for other data.  If it was still mapped
    out, a "mapout-eviction" finding fires — the client now reads bytes
    that belong to someone else. *)

(* --- crash-consistency checker ------------------------------------------ *)

val crash_point_checked : t -> space:int -> unit
(** One crash point (power cut after the Nth disk write) was enumerated,
    recovered from, and its invariants verified.  Counter only — the
    interesting outputs are the findings below, or their absence. *)

val crash_lost_write : t -> space:int -> string -> unit
(** A write the file system acknowledged before the crash is missing or
    wrong after recovery — a "lost-write" finding. *)

val crash_torn_state : t -> space:int -> string -> unit
(** Recovery left the volume structurally inconsistent (an fsck
    invariant failed, or an un-acknowledged op is partially visible) —
    a "torn-state" finding. *)

(* --- vnode-lifecycle checker --------------------------------------------- *)

val vnode_active : t -> space:int -> mount:int -> file:int -> unit
(** A vnode for [(mount, file)] was interned.  Re-activating an id that
    was reclaimed is legitimate (formats reuse file ids): the reclaimed
    mark is dropped. *)

val vnode_ref : t -> space:int -> mount:int -> file:int -> unit
(** A long-lived holder (an open-file table entry) took a reference. *)

val vnode_unref : t -> space:int -> mount:int -> file:int -> unit
(** A reference was dropped.  Dropping a reference the shadow count does
    not hold is a "ref-underflow" finding. *)

val vnode_reclaimed : t -> space:int -> mount:int -> file:int -> unit
(** The vnode was reclaimed (its file was unlinked, or its mount
    recovered).  Outstanding references are legitimate here — the holder
    must fail subsequent uses with [E_bad_handle]. *)

val vnode_used :
  t -> space:int -> mount:int -> file:int -> op:string -> unit
(** An operation was dispatched through the vnode.  Dispatch through a
    reclaimed vnode is a "use-after-reclaim" finding (reported once per
    vnode, then re-armed). *)

val vnode_mount_recovered : t -> space:int -> mount:int -> unit
(** The mount ran crash recovery: every vnode of the dead incarnation is
    gone.  Any shadow reference still outstanding is a "vnode-leak"
    finding; the mount's shadow state is then purged (file ids will be
    reused by the recovered incarnation). *)

val vnode_live_refs : t -> space:int -> mount:int -> int
(** Outstanding shadow references for the mount (test hook). *)

(* --- name-cache shadow ---------------------------------------------------- *)

val ncache_stored :
  t -> space:int -> mount:int -> dir:int -> name:string -> file:int -> unit
(** A positive name-cache entry [(dir, name) -> file] was inserted. *)

val ncache_hit : t -> space:int -> mount:int -> dir:int -> name:string -> unit
(** A walk was served from the cache.  If the shadowed target vnode was
    reclaimed and never invalidated, a "stale-entry" finding fires. *)

val ncache_invalidated :
  t -> space:int -> mount:int -> dir:int -> name:string -> unit
(** The entry was invalidated (unlink/rename/create or LRU eviction). *)

val ncache_cleared : t -> space:int -> unit
(** The whole cache was dropped (recovery): purge the shadow store. *)

(* --- netisr shard checker ------------------------------------------------- *)

val net_socket_home : t -> space:int -> sock:int -> shard:int -> unit
(** Socket [sock] (a lifetime-unique uid, not its reusable port number)
    was created with its state homed on [shard]: from now on, only that
    shard's protocol thread may touch it. *)

val net_touched : t -> space:int -> sock:int -> home:int -> shard:int -> unit
(** A packet-delivery path running in [shard]'s context touched [sock]
    (whose home the caller believes is [home]; the registered home from
    {!net_socket_home} wins if they disagree).  A touch from any shard
    other than the home is a "shard-crossing" finding — the lock-free
    discipline of the netisr model was violated. *)

(* --- reincarnation checker ------------------------------------------------ *)

val reinc_shard_killed : t -> space:int -> shard:int -> unit
(** A protocol shard was killed for micro-reboot. *)

val reinc_expect : t -> space:int -> shard:int -> sock:int -> unit
(** Socket [sock] (lifetime uid) was live in the killed shard: its
    reincarnation must rebuild it, or it is orphaned state. *)

val reinc_restored : t -> space:int -> shard:int -> sock:int -> unit
(** The reborn shard rebuilt [sock] from the cross-shard registry.  If
    nothing expected matches, the registry held a "stale-registry"
    entry — state for a socket the dead shard no longer had. *)

val reinc_shard_reborn : t -> space:int -> shard:int -> unit
(** The shard finished reincarnating.  Every expected socket not
    restored by now is an "orphaned-state" finding. *)

val reinc_rights_residue :
  t -> space:int -> shard:int -> port:int -> pname:string -> unit
(** After the reboot the netserver still holds rights to a port backing
    no live socket — a "rights-residue" finding. *)

val reinc_budget_exhausted :
  t -> space:int -> path:string -> restarts:int -> unit
(** A supervised server burned through its windowed restart budget and
    was demoted to degraded mode.  Recorded as a "budget-exhausted"
    finding (visible in the finding list) but counted outside
    {!total_findings}: demotion is the policy working as designed. *)

val reinc_pending : t -> space:int -> int
(** Expected-but-unrestored sockets outstanding (test hook). *)

(* --- reporting ---------------------------------------------------------- *)

val findings : t -> finding list
(** Findings recorded so far, oldest first (leak findings appear only in
    {!report}, which scans live entries against dead ports). *)

val report : t -> report
val total_findings : report -> int
val to_json : report -> string
(** One JSON object with per-checker counts and the finding list —
    the payload of [BENCH_check.json]. *)

val pp_report : Format.formatter -> report -> unit
