open Mach.Ktypes

type process = {
  p_pid : int;
  p_task : task;
  p_mem : Os2_memory.t;
  mutable p_alive : bool;
}

type t = {
  kernel : Mach.Kernel.t;
  runtime : Mk_services.Runtime.t;
  fs : Fileserver.File_server.t;
  os2_task : task;
  os2_port : port;
  doscalls : Machine.Layout.region;
  mutable processes : process list;
  mutable next_pid : int;
}

type payload +=
  | OS2_exec of string
  | OS2_exit of int
  | OS2_r_pid of int
  | OS2_r_ok

let sem = Fileserver.Vfs.os2_semantics

(* every doscall fetches stub code in the shared doscalls library *)
let charge_doscall t ?(bytes = 192) () =
  Mach.Ktext.exec_in t.kernel.Mach.Kernel.ktext t.doscalls ~offset:0x200 ~bytes

let handle t msg =
  match msg.msg_payload with
  | OS2_exec name ->
      (* the server side of process creation: build the task and its
         shared-library mappings *)
      let sys = t.kernel.Mach.Kernel.sys in
      let task =
        Mach.Kernel.task_create t.kernel ~name ~personality:"os2" ()
      in
      Mk_services.Runtime.attach t.runtime task;
      task.libraries <- ("doscalls", t.doscalls) :: task.libraries;
      let pid = t.next_pid in
      t.next_pid <- t.next_pid + 1;
      let p =
        { p_pid = pid; p_task = task; p_mem = Os2_memory.create t.kernel task;
          p_alive = true }
      in
      t.processes <- p :: t.processes;
      ignore sys;
      simple_message ~inline_bytes:8 ~payload:(OS2_r_pid pid) ()
  | OS2_exit pid ->
      (match List.find_opt (fun p -> p.p_pid = pid) t.processes with
      | Some p ->
          p.p_alive <- false;
          t.processes <- List.filter (fun q -> q.p_pid <> pid) t.processes;
          Mach.Sched.task_halt t.kernel.Mach.Kernel.sys p.p_task
      | None -> ());
      simple_message ~payload:OS2_r_ok ()
  | _ -> simple_message ~payload:(P_error Kern_invalid_argument) ()

let start (kernel : Mach.Kernel.t) runtime fs ?name_service () =
  let sys = kernel.Mach.Kernel.sys in
  Mach.Sched.with_uncharged sys (fun () ->
      let os2_task =
        Mach.Kernel.task_create kernel ~name:"os2-server" ~personality:"os2"
          ~text_bytes:(48 * 1024) ()
      in
      Mk_services.Runtime.attach runtime os2_task;
      let os2_port = Mach.Port.allocate sys ~receiver:os2_task ~name:"os2" in
      let layout = kernel.Mach.Kernel.machine.Machine.layout in
      let doscalls =
        match Machine.Layout.find layout "lib:doscalls" with
        | Some r -> r
        | None ->
            Machine.Layout.alloc layout ~name:"lib:doscalls"
              ~kind:Machine.Layout.Code ~size:(24 * 1024)
      in
      let t =
        {
          kernel;
          runtime;
          fs;
          os2_task;
          os2_port;
          doscalls;
          processes = [];
          next_pid = 1;
        }
      in
      ignore
        (Mach.Kernel.thread_spawn kernel os2_task ~name:"os2-serve" (fun () ->
             Mach.Rpc.serve sys os2_port (handle t))
          : thread);
      (match name_service with
      | Some ns ->
          Mk_services.Name_db.rebind (Mk_services.Name_service.db ns)
            ~path:"/servers/os2"
            ~attributes:[ ("personality", "os2") ]
            ~port:os2_port ()
      | None -> ());
      t)

let server_task t = t.os2_task
let server_port t = t.os2_port
let process_count t = List.length t.processes
let process_task p = p.p_task
let memory_of p = p.p_mem

(* find the process record for a freshly created pid *)
let find_pid t pid = List.find (fun p -> p.p_pid = pid) t.processes

let create_process t ~name ~entry =
  let sys = t.kernel.Mach.Kernel.sys in
  let make () =
    match
      Mach.Rpc.call sys t.os2_port
        (simple_message
           ~inline_bytes:(32 + String.length name)
           ~payload:(OS2_exec name) ())
    with
    | Ok { msg_payload = OS2_r_pid pid; _ } -> find_pid t pid
    | Ok _ | Error _ -> failwith "OS2 create_process failed"
  in
  let p =
    match sys.Mach.Sched.current with
    | Some _ -> make ()
    | None ->
        (* boot context: run the exchange from a bootstrap thread *)
        let result = ref None in
        let boot = Mach.Kernel.task_create t.kernel ~name:"os2-boot" () in
        ignore
          (Mach.Kernel.thread_spawn t.kernel boot ~name:"boot" (fun () ->
               result := Some (make ()))
            : thread);
        let ok = Mach.Sched.run_until sys (fun () -> !result <> None) in
        (match (ok, !result) with
        | _, Some p -> p
        | _, None -> failwith "OS2 create_process: boot exchange stuck")
  in
  ignore
    (Mach.Kernel.thread_spawn t.kernel p.p_task ~name:(name ^ ".main")
       (fun () -> entry p)
      : thread);
  p

let dos_open t p ~path ?(create = false) () =
  ignore p;
  charge_doscall t ();
  Fileserver.File_server.Client.open_ t.fs sem ~path ~create ()

let dos_read t p h ~bytes =
  ignore p;
  charge_doscall t ();
  Fileserver.File_server.Client.read t.fs h ~bytes

let dos_write t p h data =
  ignore p;
  charge_doscall t ();
  Fileserver.File_server.Client.write t.fs h data

let dos_close t p h =
  ignore p;
  charge_doscall t ();
  Fileserver.File_server.Client.close t.fs h

let dos_delete t p ~path =
  ignore p;
  charge_doscall t ();
  Fileserver.File_server.Client.unlink t.fs sem ~path

let dos_alloc_mem t p ~bytes =
  charge_doscall t ~bytes:96 ();
  Os2_memory.dos_alloc_mem p.p_mem ~bytes

let dos_sub_alloc t p ~bytes =
  charge_doscall t ~bytes:96 ();
  Os2_memory.dos_sub_alloc p.p_mem ~bytes

let dos_create_thread t p ~name body =
  charge_doscall t ();
  Mach.Kernel.thread_spawn t.kernel p.p_task ~name body

let dos_sleep t p ~cycles =
  ignore p;
  charge_doscall t ~bytes:96 ();
  ignore (Mach.Clock.sleep_for t.kernel.Mach.Kernel.sys ~cycles : kern_return)

let dos_exit t p =
  charge_doscall t ~bytes:96 ();
  match
    Mach.Rpc.call t.kernel.Mach.Kernel.sys t.os2_port
      (simple_message ~inline_bytes:8 ~payload:(OS2_exit p.p_pid) ())
  with
  | Ok { msg_payload = OS2_r_ok; _ } -> ()
  | Ok { msg_payload = P_error _; _ } ->
      (* exit is best-effort: the server may already have torn us down *)
      ()
  | Ok _ | Error _ -> ()

let doscalls_region t = t.doscalls
